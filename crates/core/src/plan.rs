//! The `RunRequest → run_prem / run_baseline` bridge.
//!
//! The run-plan layer (`prem-harness::plan`) canonicalizes every simulator
//! invocation in the workspace into a request; this module is the single
//! place such a request becomes an actual execution. [`RunWork`] names the
//! three execution modes every consumer uses — tamed LLC-PREM, SPM-PREM
//! and the unprotected baseline — [`RunWork::prem_config`] derives the one
//! canonical [`PremConfig`] per mode, and [`execute_run`] runs a resolved
//! request on a freshly built platform.
//!
//! Keeping the mode → configuration mapping here (rather than in each
//! consumer) is what makes the run-plan cache sound: two layers that
//! *mean* the same run cannot accidentally construct different
//! `PremConfig`s for it.

use prem_gpusim::{ExecError, PlatformConfig, Scenario};

use crate::exec::{run_baseline, NoiseModel, PremConfig};
use crate::interval::IntervalSpec;
use crate::local_store::{LocalStore, PrefetchStrategy};
use crate::{BaselineRun, PremRun};

/// What a run request executes once its platform is resolved.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RunWork {
    /// LLC-PREM with `r` prefetch repetitions — the paper's tamed
    /// configuration ([`PremConfig::llc_tamed`] with `Repeated { r }`).
    PremLlc {
        /// Prefetch repetition factor.
        r: u32,
    },
    /// SPM-PREM, the HePREM-like state of the art ([`PremConfig::spm`]).
    PremSpm,
    /// The unprotected baseline (no phases, no staging, no protection).
    Baseline,
}

impl RunWork {
    /// Short stable name used in canonical request keys (`llc-r8`, `spm`,
    /// `base`). Part of every cached fingerprint — renaming a mode
    /// invalidates all published plans, so name modes once.
    pub fn key(&self) -> String {
        match self {
            RunWork::PremLlc { r } => format!("llc-r{r}"),
            RunWork::PremSpm => "spm".into(),
            RunWork::Baseline => "base".into(),
        }
    }

    /// The canonical [`PremConfig`] this mode executes under (`None` for
    /// the baseline, which takes seed and noise directly). This is the
    /// single source of the experiment configurations: `prem-report`'s
    /// `llc_prem_config` and the matrix engine both delegate here.
    pub fn prem_config(&self, seed: u64, noise: NoiseModel) -> Option<PremConfig> {
        let cfg = match self {
            RunWork::PremLlc { r } => PremConfig {
                store: LocalStore::Llc {
                    prefetch: PrefetchStrategy::Repeated { r: *r },
                },
                ..PremConfig::llc_tamed()
            },
            RunWork::PremSpm => PremConfig::spm(),
            RunWork::Baseline => return None,
        };
        Some(cfg.with_seed(seed).with_noise(noise))
    }
}

/// Outcome of one executed run request: the PREM result or the baseline
/// result, depending on the request's [`RunWork`].
#[derive(Clone, Debug, PartialEq)]
pub enum RunOutput {
    /// A PREM schedule execution ([`RunWork::PremLlc`] / [`RunWork::PremSpm`]).
    Prem(PremRun),
    /// An unprotected baseline execution ([`RunWork::Baseline`]).
    Baseline(BaselineRun),
}

impl RunOutput {
    /// Unwraps a PREM result.
    ///
    /// # Panics
    ///
    /// Panics if the output is a baseline run — requesting PREM output for
    /// a baseline request is a plan-construction bug, not a runtime
    /// condition.
    pub fn prem(self) -> PremRun {
        match self {
            RunOutput::Prem(run) => run,
            RunOutput::Baseline(_) => panic!("requested PREM output of a baseline run"),
        }
    }

    /// Unwraps a baseline result.
    ///
    /// # Panics
    ///
    /// Panics if the output is a PREM run (see [`RunOutput::prem`]).
    pub fn baseline(self) -> BaselineRun {
        match self {
            RunOutput::Baseline(run) => run,
            RunOutput::Prem(_) => panic!("requested baseline output of a PREM run"),
        }
    }
}

/// Executes one fully-resolved run request: builds `platform_cfg`, derives
/// the mode's canonical [`PremConfig`] and dispatches to [`run_prem`] or
/// [`run_baseline`].
///
/// `platform_cfg` must already carry every per-request override (LLC
/// policy, LLC seed, co-runner mix) — resolution is the plan layer's job;
/// this bridge only executes.
///
/// # Errors
///
/// Exactly the [`run_prem`] / [`run_baseline`] error conditions
/// ([`ExecError::Spm`] for over-capacity SPM footprints).
pub fn execute_run(
    platform_cfg: &PlatformConfig,
    intervals: &[IntervalSpec],
    work: RunWork,
    seed: u64,
    scenario: Scenario,
    noise: NoiseModel,
) -> Result<RunOutput, ExecError> {
    execute_run_profiled(platform_cfg, intervals, work, seed, scenario, noise, None)
}

/// Runs only the isolated profiling pass of a request, returning its
/// `(m_wcet, c_wcet)` — the memoizable half of [`execute_run`].
///
/// Returns `Ok(None)` for [`RunWork::Baseline`] (the baseline never
/// profiles). The result is valid for *every* scenario sibling of the
/// request (profiling is scenario-independent — see
/// [`crate::exec::profile_phases`]); feed it back through
/// [`execute_run_profiled`] under any scenario and the output is
/// bit-identical to [`execute_run`].
///
/// # Errors
///
/// Exactly the [`run_prem`] error conditions.
pub fn profile_run(
    platform_cfg: &PlatformConfig,
    intervals: &[IntervalSpec],
    work: RunWork,
    seed: u64,
    noise: NoiseModel,
) -> Result<Option<(f64, f64)>, ExecError> {
    match work.prem_config(seed, noise) {
        Some(cfg) => {
            let mut platform = platform_cfg.build();
            crate::exec::profile_phases(&mut platform, intervals, &cfg).map(Some)
        }
        None => Ok(None),
    }
}

/// [`execute_run`] with an optional memoized profiling result from
/// [`profile_run`] — `Some` skips the profiling pass, `None` profiles
/// inline. Baseline work ignores the hint.
///
/// # Errors
///
/// Exactly the [`execute_run`] error conditions.
pub fn execute_run_profiled(
    platform_cfg: &PlatformConfig,
    intervals: &[IntervalSpec],
    work: RunWork,
    seed: u64,
    scenario: Scenario,
    noise: NoiseModel,
    profiled: Option<(f64, f64)>,
) -> Result<RunOutput, ExecError> {
    execute_run_reporting_profile(
        platform_cfg,
        intervals,
        work,
        seed,
        scenario,
        noise,
        profiled,
    )
    .map(|(out, _)| out)
}

/// [`execute_run_profiled`], additionally returning the `(m_wcet, c_wcet)`
/// the run's budgets derive from (`None` for baseline work) — what the
/// plan layer backfills its profile memo with when the profiling pass was
/// fused into the timed run instead of paid separately (see
/// [`crate::exec::run_prem_traced_reporting_profile`]).
///
/// # Errors
///
/// Exactly the [`execute_run`] error conditions.
pub fn execute_run_reporting_profile(
    platform_cfg: &PlatformConfig,
    intervals: &[IntervalSpec],
    work: RunWork,
    seed: u64,
    scenario: Scenario,
    noise: NoiseModel,
    profiled: Option<(f64, f64)>,
) -> Result<(RunOutput, Option<(f64, f64)>), ExecError> {
    let mut platform = platform_cfg.build();
    match work.prem_config(seed, noise) {
        Some(cfg) => crate::exec::run_prem_traced_reporting_profile(
            &mut platform,
            intervals,
            &cfg,
            scenario,
            profiled,
            &mut prem_memsim::NullSink,
        )
        .map(|(run, wcets)| (RunOutput::Prem(run), Some(wcets))),
        None => run_baseline(&mut platform, intervals, seed, scenario, noise)
            .map(|run| (RunOutput::Baseline(run), None)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_prem;
    use crate::interval::CAccess;
    use prem_memsim::LineAddr;

    fn toy_intervals() -> Vec<IntervalSpec> {
        (0..4)
            .map(|i| {
                let lines: Vec<_> = (0..64u64).map(|j| LineAddr::new(i * 64 + j)).collect();
                let accesses = lines.iter().map(|&l| CAccess::read(l)).collect();
                IntervalSpec::new(lines, accesses, 128)
            })
            .collect()
    }

    #[test]
    fn work_keys_are_stable() {
        // These strings are part of every cached request fingerprint.
        assert_eq!(RunWork::PremLlc { r: 8 }.key(), "llc-r8");
        assert_eq!(RunWork::PremSpm.key(), "spm");
        assert_eq!(RunWork::Baseline.key(), "base");
    }

    #[test]
    fn prem_config_matches_the_hand_built_experiment_configs() {
        let noise = NoiseModel::tx1();
        let llc = RunWork::PremLlc { r: 8 }.prem_config(11, noise).unwrap();
        let by_hand = PremConfig {
            store: LocalStore::Llc {
                prefetch: PrefetchStrategy::Repeated { r: 8 },
            },
            ..PremConfig::llc_tamed()
        }
        .with_seed(11)
        .with_noise(noise);
        assert_eq!(llc, by_hand);
        let spm = RunWork::PremSpm.prem_config(11, noise).unwrap();
        assert_eq!(spm, PremConfig::spm().with_seed(11).with_noise(noise));
        assert!(RunWork::Baseline.prem_config(11, noise).is_none());
    }

    #[test]
    fn bridge_reproduces_direct_execution() {
        let cfg = PlatformConfig::tx1().llc_seed(7);
        let ivs = toy_intervals();
        let bridged = execute_run(
            &cfg,
            &ivs,
            RunWork::PremLlc { r: 8 },
            7,
            Scenario::Isolation,
            NoiseModel::tx1(),
        )
        .unwrap()
        .prem();
        let mut platform = cfg.build();
        let direct = run_prem(
            &mut platform,
            &ivs,
            &RunWork::PremLlc { r: 8 }
                .prem_config(7, NoiseModel::tx1())
                .unwrap(),
            Scenario::Isolation,
        )
        .unwrap();
        assert_eq!(bridged, direct);

        let base = execute_run(
            &cfg,
            &ivs,
            RunWork::Baseline,
            7,
            Scenario::Isolation,
            NoiseModel::off(),
        )
        .unwrap()
        .baseline();
        let mut platform = cfg.build();
        let direct = run_baseline(
            &mut platform,
            &ivs,
            7,
            Scenario::Isolation,
            NoiseModel::off(),
        )
        .unwrap();
        assert_eq!(base, direct);
    }

    #[test]
    #[should_panic(expected = "baseline output of a PREM run")]
    fn output_unwrap_mismatch_panics() {
        let cfg = PlatformConfig::tx1();
        let out = execute_run(
            &cfg,
            &toy_intervals(),
            RunWork::PremLlc { r: 1 },
            1,
            Scenario::Isolation,
            NoiseModel::off(),
        )
        .unwrap();
        let _ = out.baseline();
    }
}
