//! The PREM executor: profiles a tiled kernel, budgets its phases, and runs
//! the budgeted schedule under a contention scenario.
//!
//! This is the runtime the paper describes: per interval, an M-phase stages
//! the footprint under the exclusive DRAM token (repeating prefetches per
//! the [`PrefetchStrategy`](crate::PrefetchStrategy)), then a C-phase
//! computes while the CPU owns DRAM. Phase slots are sized by a
//! [`BudgetPolicy`] from profiled worst-case phase times (floored at the
//! MSG), idling when work finishes early (paper Fig 1 (d)) and overrunning
//! when interference makes C-phase misses slower than budgeted.

use prem_gpusim::{ExecError, InterferenceEngine, Op, OpStream, Platform, Scenario, SmExecutor};
use prem_memsim::{BusWindow, CacheStats, Contention, LineAddr, NullSink, Phase, TraceSink};

use crate::budget::{BudgetPolicy, Budgets};
use crate::interval::IntervalSpec;
use crate::local_store::LocalStore;
use crate::metrics::Breakdown;
use crate::sync::{PhaseTiming, SyncConfig};

/// Unmanaged background traffic during compute phases.
///
/// Real GPU kernels touch cached data the PREM compiler does not manage:
/// kernel parameters, stack spills, index structures. These lines are
/// churned out of the cache by M-phase staging and refetched during the
/// C-phase, putting a floor under the CPMR and — crucially — generating the
/// *fills during the compute phase* that make bad-way residency dangerous
/// (paper §IV). `PremConfig` defaults to no noise (pure PREM theory); the
/// experiment harness enables the TX1-calibrated level.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NoiseModel {
    /// Size of the unmanaged working set, in lines (0 disables noise).
    pub lines: u32,
    /// One unmanaged access is injected every `every` kernel memory
    /// accesses (0 disables noise).
    pub every: u32,
}

impl NoiseModel {
    /// No unmanaged traffic (pure PREM model).
    pub fn off() -> Self {
        NoiseModel { lines: 0, every: 0 }
    }

    /// TX1-calibrated unmanaged traffic: an 8 KiB working set touched once
    /// every 32 kernel accesses.
    pub fn tx1() -> Self {
        NoiseModel {
            lines: 64,
            every: 32,
        }
    }

    /// Whether noise is enabled.
    pub fn enabled(&self) -> bool {
        self.lines > 0 && self.every > 0
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::off()
    }
}

/// Address region of the unmanaged working set: far above any kernel data
/// laid out by `prem-kernels` (which starts at 0x1000_0000).
const NOISE_BASE_LINE: u64 = 0x0F00_0000;

/// Injects one unmanaged read after every `noise.every` memory ops of
/// `stream`, cycling through the noise working set. `counter` persists
/// across phases so the rotation is continuous.
fn inject_noise(stream: &OpStream, noise: NoiseModel, counter: &mut u64) -> OpStream {
    if !noise.enabled() {
        return stream.clone();
    }
    let mut out = OpStream::with_capacity(stream.len() + stream.len() / noise.every as usize + 1);
    let mut since = 0u32;
    for op in stream {
        out.push(*op);
        let is_mem = !matches!(op, Op::Alu(_) | Op::TranslAddr(_));
        if is_mem {
            since += 1;
            if since >= noise.every {
                since = 0;
                let line = NOISE_BASE_LINE + (*counter % noise.lines as u64);
                *counter += 1;
                out.push(Op::CachedLoad(LineAddr::new(line)));
            }
        }
    }
    out
}

/// Full configuration of a PREM execution.
#[derive(Clone, Debug, PartialEq)]
pub struct PremConfig {
    /// Local-store strategy (SPM or LLC + prefetch strategy).
    pub store: LocalStore,
    /// Synchronization protocol parameters.
    pub sync: SyncConfig,
    /// Budgeting policy.
    pub budget: BudgetPolicy,
    /// Seed for the platform's randomized components.
    pub seed: u64,
    /// Unmanaged compute-phase traffic (defaults to off).
    pub noise: NoiseModel,
}

impl PremConfig {
    /// The paper's proposed configuration: LLC with `R = 8`, TX1 sync,
    /// fair co-scheduling.
    pub fn llc_tamed() -> Self {
        PremConfig {
            store: LocalStore::llc_tamed(),
            sync: SyncConfig::tx1(),
            budget: BudgetPolicy::fair(),
            seed: 1,
            noise: NoiseModel::off(),
        }
    }

    /// The SPM-based state of the art (HePREM-like).
    pub fn spm() -> Self {
        PremConfig {
            store: LocalStore::spm_default(),
            sync: SyncConfig::tx1(),
            budget: BudgetPolicy::fair(),
            seed: 1,
            noise: NoiseModel::off(),
        }
    }

    /// Replaces the local store.
    pub fn with_store(mut self, store: LocalStore) -> Self {
        self.store = store;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the unmanaged-traffic model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }
}

/// Result of one PREM schedule execution.
#[derive(Clone, Debug, PartialEq)]
pub struct PremRun {
    /// Number of intervals executed.
    pub intervals: usize,
    /// Makespan breakdown (cycles).
    pub breakdown: Breakdown,
    /// Total schedule length (cycles).
    pub makespan_cycles: f64,
    /// Static guarantee: the budgeted schedule envelope (cycles) the
    /// schedulability analysis would use.
    pub budget_envelope_cycles: f64,
    /// The per-interval budgets used.
    pub budgets: Budgets,
    /// LLC statistics over the timed run.
    pub llc: CacheStats,
    /// Compute-phase miss ratio over the timed run.
    pub cpmr: f64,
    /// Prefetches that hit across all M-phase rounds.
    pub prefetch_hits: u64,
    /// Prefetches that missed (performed fills).
    pub prefetch_misses: u64,
    /// Largest number of M-phase prefetch rounds any interval used.
    pub max_rounds_used: u32,
    /// Cycles of phase work exceeding the static budgets — non-zero when
    /// interference pushes C-phases past their schedulability envelope.
    pub budget_violation_cycles: f64,
    /// Per-interval (M-phase, C-phase) slot timings, in execution order —
    /// the raw material of paper Fig 1 / the timeline renderer.
    pub interval_timings: Vec<(PhaseTiming, PhaseTiming)>,
    /// Shared-bus ledger over the C-phase slots: how many bytes the GPU
    /// moved and how many the co-runner actors absorbed while the token
    /// was released. All zeros in isolation.
    pub bus: BusWindow,
    /// LLC lines injected by cache-thrashing co-runners over the run.
    pub polluted_lines: u64,
}

/// Result of an unprotected baseline execution.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineRun {
    /// Execution time (cycles).
    pub cycles: f64,
    /// LLC statistics.
    pub llc: CacheStats,
}

/// Executes `intervals` under PREM on `platform`.
///
/// The platform is cold-reset and reseeded before both the profiling pass
/// and the timed run, so results are deterministic in `cfg.seed`.
///
/// # Errors
///
/// [`ExecError::Spm`] when the SPM strategy is used with intervals whose
/// footprint exceeds the scratchpad capacity.
pub fn run_prem(
    platform: &mut Platform,
    intervals: &[IntervalSpec],
    cfg: &PremConfig,
    scenario: Scenario,
) -> Result<PremRun, ExecError> {
    run_prem_traced(platform, intervals, cfg, scenario, &mut NullSink)
}

/// [`run_prem`] with an optional memoized profiling result — see
/// [`run_prem_traced_with_profile`] for the memoization contract.
///
/// # Errors
///
/// [`ExecError::Spm`] exactly as for [`run_prem`].
pub fn run_prem_with_profile(
    platform: &mut Platform,
    intervals: &[IntervalSpec],
    cfg: &PremConfig,
    scenario: Scenario,
    profiled: Option<(f64, f64)>,
) -> Result<PremRun, ExecError> {
    run_prem_traced_with_profile(platform, intervals, cfg, scenario, profiled, &mut NullSink)
}

/// [`run_prem`] with cache-event instrumentation: the **timed run** (not
/// the profiling pass) reports every LLC access outcome, co-runner
/// pollution fill, interval boundary, phase transition and direct DRAM
/// transfer to `sink`, with op-issue timestamps on the global schedule
/// clock. With [`NullSink`] this monomorphizes to exactly [`run_prem`] —
/// the contract the golden suite pins.
///
/// Capture starts after the cold reset that precedes the timed run, so a
/// recorded trace replayed against an equally cold cache (same geometry,
/// policy and `cfg.seed`) reproduces the run's [`CacheStats`]
/// field-for-field — the `prem-trace` replay engine's validation
/// property.
///
/// # Errors
///
/// [`ExecError::Spm`] exactly as for [`run_prem`].
pub fn run_prem_traced<S: TraceSink>(
    platform: &mut Platform,
    intervals: &[IntervalSpec],
    cfg: &PremConfig,
    scenario: Scenario,
    sink: &mut S,
) -> Result<PremRun, ExecError> {
    run_prem_traced_with_profile(platform, intervals, cfg, scenario, None, sink)
}

/// [`run_prem_traced`] with an optional memoized profiling result.
///
/// `profiled` carries the `(m_wcet, c_wcet)` a previous
/// [`profile_phases`] call returned for the *same* platform config,
/// intervals, store/prefetch mode, seed and noise model. Profiling is
/// deterministic in exactly those inputs (it resets and reseeds the
/// platform on entry and runs isolated — no scenario dependence), so
/// passing the memoized pair skips the pass entirely and the timed run —
/// which cold-resets again before executing — is bit-identical to the
/// unmemoized call. Passing stale values from any other request computes
/// garbage budgets; the plan layer's `ProfileKey` is the guarded way in.
///
/// # Errors
///
/// [`ExecError::Spm`] exactly as for [`run_prem`].
pub fn run_prem_traced_with_profile<S: TraceSink>(
    platform: &mut Platform,
    intervals: &[IntervalSpec],
    cfg: &PremConfig,
    scenario: Scenario,
    profiled: Option<(f64, f64)>,
    sink: &mut S,
) -> Result<PremRun, ExecError> {
    run_prem_traced_reporting_profile(platform, intervals, cfg, scenario, profiled, sink)
        .map(|(run, _)| run)
}

/// [`run_prem_traced_with_profile`], additionally returning the
/// `(m_wcet, c_wcet)` pair the run's budgets derive from — exactly what
/// [`profile_phases`] reports, suitable for the plan layer's profile memo.
///
/// When `profiled` is `None` and the scenario's co-runner mix has constant
/// contention and no cache polluters, the separate profiling pass is
/// **fused** into the timed run. The profiling trajectory and the timed
/// trajectory coincide (both start from the same cold reset and reseed
/// and feed identical op sequences — the invariant the replay equivalence
/// suite proves), so one walk suffices: the C-phase accumulates the
/// isolated-contention cycles alongside the live ones
/// ([`SmExecutor::run_dual_traced`], per-op in issue order, bit-exact),
/// the M-phase work is its own isolated measurement already (the token is
/// held), and each phase's per-interval maximum is the WCET. Nothing in
/// an unpolluted walk consumes budgets until after the fact, so they are
/// derived post-loop from the observed WCETs. The output is bit-identical
/// to profiling separately; the walk is simply not paid twice.
///
/// # Errors
///
/// [`ExecError::Spm`] exactly as for [`run_prem`].
pub fn run_prem_traced_reporting_profile<S: TraceSink>(
    platform: &mut Platform,
    intervals: &[IntervalSpec],
    cfg: &PremConfig,
    scenario: Scenario,
    profiled: Option<(f64, f64)>,
    sink: &mut S,
) -> Result<(PremRun, (f64, f64)), ExecError> {
    let msg_cycles = platform.us_to_cycles(cfg.sync.msg_us);
    let switch_cycles = platform.us_to_cycles(cfg.sync.switch_cost_us());

    let mut engine = InterferenceEngine::new(platform.cpu.active_corunners(scenario), cfg.seed);
    // Fused self-profiling eligibility: constant contention (so the live
    // C-phase shares the profiling trajectory and a dual-cost walk can
    // price both) and no polluters (pollution would perturb the LLC
    // between phases, and its volume depends on the budgets themselves).
    let fused_c_cont = match profiled {
        None => engine
            .static_contention()
            .filter(|_| !engine.has_polluters()),
        Some(_) => None,
    };
    // Profiling pass: isolated execution to obtain per-phase WCETs —
    // skipped when the caller supplies the memoized result, fused into
    // the timed run when eligible.
    let profiled = match (profiled, fused_c_cont) {
        (Some(wcets), _) => Some(wcets),
        (None, Some(_)) => None,
        (None, None) => Some(profile_phases(platform, intervals, cfg)?),
    };
    let known_budgets = profiled.map(|(m, c)| cfg.budget.compute(m, c, msg_cycles));

    // Timed run under the requested scenario. The co-runner mix becomes a
    // set of live actors: bus contention per C-phase op is derived from
    // the demand the mix generates at that op's schedule time, and
    // cache-thrashing actors pollute the LLC during every token-released
    // window.
    platform.reset();
    platform.reseed(cfg.seed);
    let m_cont = platform.cpu.m_phase_contention();
    let ledger_cont = engine.mean_contention();

    let mut breakdown = Breakdown::default();
    let mut prefetch_hits = 0;
    let mut prefetch_misses = 0;
    let mut max_rounds_used = 0;
    let mut noise_counter = 0u64;
    // Per-interval (M work, C work): the budget-violation diagnostic is
    // derived from these after the loop, once budgets are known in both
    // the memoized and the fused mode.
    let mut per_iv = Vec::with_capacity(intervals.len());
    // Observed WCETs (the fused mode's profiling result): per-interval
    // maxima accumulated in interval order, exactly as `profile_phases`
    // folds them.
    let mut m_wcet_obs = 0.0f64;
    let mut c_wcet_obs = 0.0f64;
    let mut interval_timings = Vec::with_capacity(intervals.len());
    let mut bus = BusWindow::default();
    // Global schedule clock: what bursty co-runners' duty windows are
    // phased against.
    let mut now = 0.0f64;

    for iv in intervals {
        sink.on_interval();
        platform.mem.begin_interval();

        // --- M-phase (token held: every co-runner's DRAM traffic is
        // blocked, so the phase runs isolated and unpolluted) ---
        now += switch_cycles;
        sink.on_phase(Phase::MPhase, now);
        let m_pass = cfg.store.m_phase_pass(iv);
        let rounds = match &cfg.store {
            LocalStore::Llc { prefetch } => *prefetch,
            LocalStore::Spm { .. } => crate::local_store::PrefetchStrategy::Single,
        };
        let mut m_work = 0.0;
        let mut used = 0;
        let max_rounds = rounds.max_rounds();
        let mut round = 0;
        // A fixed repetition re-runs one identical input pass, so a sink
        // that opted into deduplicated delivery observes round 1 only and
        // the repeats run unobserved — they carry no information the first
        // round didn't (outcomes are not part of a sequence capture).
        let dedup = S::DEDUP_M_ROUNDS && !rounds.adaptive();
        while round < max_rounds {
            let mut ex = SmExecutor::new(&mut platform.mem, &platform.cost);
            let out = if round == 0 || !dedup {
                ex.run_traced(&m_pass, Phase::MPhase, m_cont, now + m_work, sink)?
            } else {
                ex.run_traced(&m_pass, Phase::MPhase, m_cont, now + m_work, &mut NullSink)?
            };
            m_work += out.cycles;
            prefetch_hits += out.prefetch_hits;
            prefetch_misses += out.prefetch_misses;
            used += 1;
            round += 1;
            if rounds.adaptive() && used > 1 && out.prefetch_misses == 0 {
                break;
            }
            // All-hit shortcut: a zero-miss round left contents, RNG and
            // (up to unobservable clock values) replacement state exactly
            // where they were, so every remaining fixed round is the same
            // pure hit pass with bit-identical cycles. Credit those rounds
            // analytically — repeated f64 adds preserve the exact summation
            // a simulated loop would produce — instead of re-simulating
            // the footprint. Only when the remaining rounds run unobserved
            // (no per-event recording, or the sink deduplicates repeats and
            // round 1 is already delivered) and no L1 sits in front of the
            // LLC (L1 churn would make later rounds diverge).
            if (!S::RECORDS || dedup)
                && !rounds.adaptive()
                && out.prefetch_misses == 0
                && round < max_rounds
                && platform.mem.l1().is_none()
            {
                let remaining = max_rounds - round;
                for _ in 0..remaining {
                    m_work += out.cycles;
                    prefetch_hits += out.prefetch_hits;
                }
                platform
                    .mem
                    .llc_mut()
                    .credit_repeated_hits(Phase::MPhase, u64::from(remaining) * out.prefetch_hits);
                used += remaining;
                round = max_rounds;
            }
        }
        max_rounds_used = max_rounds_used.max(used);
        // The M-phase runs token-held, i.e. isolated — its work IS the
        // profiling measurement (identical accumulation in both passes).
        m_wcet_obs = m_wcet_obs.max(m_work);
        let m_t = PhaseTiming::in_slot(m_work, msg_cycles);
        now += m_t.elapsed() + switch_cycles;

        // --- C-phase (token released: co-runners contend on the bus and
        // thrashers pollute the LLC for the whole static C slot) ---
        sink.on_phase(Phase::CPhase, now);
        // Fused mode has no polluters (eligibility), so the zero window is
        // a no-op; otherwise the real C budget bounds the pollution slot.
        let pollute_window = known_budgets.as_ref().map_or(0.0, |b| b.c_cycles);
        engine.pollute_traced(platform.mem.llc_mut(), pollute_window, sink);
        let c_stream = inject_noise(&cfg.store.c_phase(iv), cfg.noise, &mut noise_counter);
        let mut ex = SmExecutor::new(&mut platform.mem, &platform.cost);
        let c_out = match fused_c_cont {
            // Fused: one walk prices the live C-phase and, per op in issue
            // order, the isolated C-phase the profiling pass would have
            // measured.
            Some(c_cont) => {
                let (out, c_iso) = ex.run_dual_traced(
                    &c_stream,
                    Phase::CPhase,
                    c_cont,
                    Contention::Isolated,
                    now,
                    sink,
                )?;
                c_wcet_obs = c_wcet_obs.max(c_iso);
                out
            }
            None => ex.run_under_traced(&c_stream, Phase::CPhase, &engine, now, sink)?,
        };

        // Eager token release with the MSG floor (Fig 1 (d)): the slot ends
        // at max(work, MSG). Budgets remain the static guarantee; work
        // beyond a budget is recorded as a violation diagnostic.
        let c_t = PhaseTiming::in_slot(c_out.cycles, msg_cycles);
        now += c_t.elapsed();
        bus.merge(&platform.cost.dram.account_window(
            c_t.elapsed(),
            c_out.levels.dram as f64 * platform.cost.line_bytes as f64,
            ledger_cont,
        ));
        breakdown.m_work += m_t.work;
        breakdown.c_work += c_t.work;
        breakdown.idle += m_t.idle + c_t.idle;
        breakdown.sync += 2.0 * switch_cycles;
        per_iv.push((m_work, c_out.cycles));
        interval_timings.push((m_t, c_t));
    }

    // WCETs: memoized/inline-profiled values, or the fused walk's own
    // observation — bit-identical by the trajectory-coincidence argument.
    let wcets = profiled.unwrap_or((m_wcet_obs, c_wcet_obs));
    let budgets = known_budgets.unwrap_or_else(|| cfg.budget.compute(wcets.0, wcets.1, msg_cycles));
    // Same per-interval fold, same order, as the previous inline
    // accumulation — only deferred until budgets exist in every mode.
    let mut budget_violation = 0.0f64;
    for &(m_work, c_cycles) in &per_iv {
        budget_violation +=
            (m_work - budgets.m_cycles).max(0.0) + (c_cycles - budgets.c_cycles).max(0.0);
    }

    let llc = platform.mem.llc().stats().clone();
    let cpmr = llc.cpmr();
    let budget_envelope_cycles =
        intervals.len() as f64 * (budgets.interval_cycles() + 2.0 * switch_cycles);

    let run = PremRun {
        intervals: intervals.len(),
        makespan_cycles: breakdown.total(),
        breakdown,
        budget_envelope_cycles,
        budgets,
        llc,
        cpmr,
        prefetch_hits,
        prefetch_misses,
        max_rounds_used,
        budget_violation_cycles: budget_violation,
        interval_timings,
        bus,
        polluted_lines: engine.polluted_lines(),
    };
    Ok((run, wcets))
}

/// Executes the unprotected baseline: the same demand accesses with no
/// phases, no staging and no protection. The same unmanaged-traffic model
/// used for PREM runs is injected for a fair comparison.
///
/// # Errors
///
/// Currently infallible in practice (no SPM ops are emitted), but kept
/// fallible for signature symmetry with [`run_prem`].
pub fn run_baseline(
    platform: &mut Platform,
    intervals: &[IntervalSpec],
    seed: u64,
    scenario: Scenario,
    noise: NoiseModel,
) -> Result<BaselineRun, ExecError> {
    run_baseline_traced(platform, intervals, seed, scenario, noise, &mut NullSink)
}

/// [`run_baseline`] with cache-event instrumentation: every LLC access
/// outcome, per-interval boundary and compute op is reported to `sink`.
/// The baseline has no PREM intervals — [`TraceSink::on_interval`] here
/// marks the boundary between the per-interval demand streams (a cost
/// accounting segment), and the cache's self-eviction epoch does **not**
/// advance (the live baseline never calls `begin_interval` either). With
/// [`NullSink`] this monomorphizes to exactly [`run_baseline`].
///
/// # Errors
///
/// Exactly the [`run_baseline`] error conditions.
pub fn run_baseline_traced<S: TraceSink>(
    platform: &mut Platform,
    intervals: &[IntervalSpec],
    seed: u64,
    scenario: Scenario,
    noise: NoiseModel,
    sink: &mut S,
) -> Result<BaselineRun, ExecError> {
    // An unprotected kernel is exposed to the whole mix the whole time:
    // bus contention on every access, and LLC pollution applied *before*
    // each interval runs, over the window that interval occupies —
    // thrash traffic concurrent with interval i must be visible to
    // interval i, not lag into i+1 (and a single-interval kernel must not
    // escape pollution entirely). The window lengths come from an
    // isolated dry pass on a scratch platform, playing the same role the
    // static C budgets play on the PREM path.
    let mut engine = InterferenceEngine::new(platform.cpu.active_corunners(scenario), seed);
    let windows = if engine.has_polluters() {
        baseline_windows(platform, intervals, seed, noise)?
    } else {
        Vec::new()
    };

    platform.reset();
    platform.reseed(seed);
    let mut cycles = 0.0;
    let mut noise_counter = 0u64;
    for (i, iv) in intervals.iter().enumerate() {
        sink.on_interval();
        if let Some(&window) = windows.get(i) {
            engine.pollute_traced(platform.mem.llc_mut(), window, sink);
        }
        let stream = inject_noise(&LocalStore::baseline(iv), noise, &mut noise_counter);
        let out = SmExecutor::new(&mut platform.mem, &platform.cost).run_under_traced(
            &stream,
            Phase::Unphased,
            &engine,
            cycles,
            sink,
        )?;
        cycles += out.cycles;
    }
    Ok(BaselineRun {
        cycles,
        llc: platform.mem.llc().stats().clone(),
    })
}

/// Isolated per-interval durations of the unprotected baseline, measured
/// on a scratch copy of `platform` — the pollution windows for thrashing
/// co-runner mixes.
fn baseline_windows(
    platform: &Platform,
    intervals: &[IntervalSpec],
    seed: u64,
    noise: NoiseModel,
) -> Result<Vec<f64>, ExecError> {
    let mut scratch = platform.clone();
    scratch.reset();
    scratch.reseed(seed);
    let mut noise_counter = 0u64;
    let mut windows = Vec::with_capacity(intervals.len());
    for iv in intervals {
        let stream = inject_noise(&LocalStore::baseline(iv), noise, &mut noise_counter);
        let out = SmExecutor::new(&mut scratch.mem, &scratch.cost).run(
            &stream,
            Phase::Unphased,
            Contention::Isolated,
        )?;
        windows.push(out.cycles);
    }
    Ok(windows)
}

/// Isolated profiling pass returning worst-case observed (M, C) phase work.
///
/// This is the pass every PREM run pays before its timed run. It is
/// deterministic in (platform config, intervals, store/prefetch mode,
/// `cfg.seed`, `cfg.noise`) and independent of the run scenario — it
/// cold-resets and reseeds the platform on entry and measures in
/// isolation, the paper's profiling discipline. That determinism is what
/// makes the result memoizable: feed it back through
/// [`run_prem_traced_with_profile`] for any scenario sibling of the
/// profiled request and the output is bit-identical to profiling inline.
///
/// # Errors
///
/// [`ExecError::Spm`] when the SPM strategy is used with intervals whose
/// footprint exceeds the scratchpad capacity.
pub fn profile_phases(
    platform: &mut Platform,
    intervals: &[IntervalSpec],
    cfg: &PremConfig,
) -> Result<(f64, f64), ExecError> {
    platform.reset();
    platform.reseed(cfg.seed);
    // Profiling is the paper's isolated measurement: no co-runner mix.
    let m_cont = platform.cpu.m_phase_contention();
    let c_cont = Contention::Isolated;
    let mut m_wcet = 0.0f64;
    let mut c_wcet = 0.0f64;
    let mut noise_counter = 0u64;
    for iv in intervals {
        platform.mem.begin_interval();
        let m_pass = cfg.store.m_phase_pass(iv);
        let rounds = match &cfg.store {
            LocalStore::Llc { prefetch } => *prefetch,
            LocalStore::Spm { .. } => crate::local_store::PrefetchStrategy::Single,
        };
        let mut m_work = 0.0;
        let max_rounds = rounds.max_rounds();
        let mut round = 0;
        while round < max_rounds {
            let out = SmExecutor::new(&mut platform.mem, &platform.cost).run(
                &m_pass,
                Phase::MPhase,
                m_cont,
            )?;
            m_work += out.cycles;
            round += 1;
            if rounds.adaptive() && round > 1 && out.prefetch_misses == 0 {
                break;
            }
            // Same all-hit shortcut as the timed run (profiling is never
            // traced, so only the L1 gate applies): remaining fixed rounds
            // after a zero-miss round are identical pure hit passes.
            if !rounds.adaptive()
                && out.prefetch_misses == 0
                && round < max_rounds
                && platform.mem.l1().is_none()
            {
                let remaining = max_rounds - round;
                for _ in 0..remaining {
                    m_work += out.cycles;
                }
                platform
                    .mem
                    .llc_mut()
                    .credit_repeated_hits(Phase::MPhase, u64::from(remaining) * out.prefetch_hits);
                round = max_rounds;
            }
        }
        let c_stream = inject_noise(&cfg.store.c_phase(iv), cfg.noise, &mut noise_counter);
        let c_out = SmExecutor::new(&mut platform.mem, &platform.cost).run(
            &c_stream,
            Phase::CPhase,
            c_cont,
        )?;
        m_wcet = m_wcet.max(m_work);
        c_wcet = c_wcet.max(c_out.cycles);
    }
    Ok((m_wcet, c_wcet))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{CAccess, IntervalSpec};
    use prem_gpusim::PlatformConfig;
    use prem_memsim::LineAddr;

    /// A toy kernel: 4 intervals of 64 lines each, streamed.
    fn toy_intervals() -> Vec<IntervalSpec> {
        (0..4)
            .map(|i| {
                let lines: Vec<_> = (0..64u64).map(|j| LineAddr::new(i * 64 + j)).collect();
                let accesses = lines.iter().map(|&l| CAccess::read(l)).collect();
                IntervalSpec::new(lines, accesses, 128)
            })
            .collect()
    }

    #[test]
    fn prem_llc_runs_and_balances() {
        let mut p = PlatformConfig::tx1().build();
        let run = run_prem(
            &mut p,
            &toy_intervals(),
            &PremConfig::llc_tamed(),
            Scenario::Isolation,
        )
        .unwrap();
        assert_eq!(run.intervals, 4);
        assert!(run.makespan_cycles > 0.0);
        // In isolation, the measured schedule fits inside the envelope.
        assert!(run.makespan_cycles <= run.budget_envelope_cycles + 1e-6);
        // Budgets floored at the MSG (40 us at 1 GHz).
        assert!(run.budgets.m_cycles >= 40_000.0);
        assert_eq!(run.budget_violation_cycles, 0.0);
    }

    #[test]
    fn prem_spm_runs_within_capacity() {
        let mut p = PlatformConfig::tx1().build();
        let run = run_prem(
            &mut p,
            &toy_intervals(),
            &PremConfig::spm(),
            Scenario::Isolation,
        )
        .unwrap();
        // SPM C-phases never miss in the LLC; all misses are M-phase DMA.
        assert_eq!(run.llc.c_phase.misses, 0);
        assert_eq!(run.cpmr, 0.0);
    }

    #[test]
    fn spm_over_capacity_is_error() {
        let mut p = PlatformConfig::tx1().build();
        // One interval with a footprint of 1024 lines = 128 KiB > 96 KiB.
        let lines: Vec<_> = (0..1024u64).map(LineAddr::new).collect();
        let iv = IntervalSpec::new(lines, vec![], 0);
        let err = run_prem(&mut p, &[iv], &PremConfig::spm(), Scenario::Isolation);
        assert!(err.is_err());
    }

    #[test]
    fn interference_never_speeds_up_prem() {
        let mut p = PlatformConfig::tx1().build();
        let iso = run_prem(
            &mut p,
            &toy_intervals(),
            &PremConfig::llc_tamed(),
            Scenario::Isolation,
        )
        .unwrap();
        let inf = run_prem(
            &mut p,
            &toy_intervals(),
            &PremConfig::llc_tamed(),
            Scenario::Interference,
        )
        .unwrap();
        assert!(inf.makespan_cycles >= iso.makespan_cycles - 1e-6);
    }

    #[test]
    fn baseline_is_slower_under_interference() {
        let mut p = PlatformConfig::tx1().build();
        let noise = NoiseModel::off();
        let iso = run_baseline(&mut p, &toy_intervals(), 1, Scenario::Isolation, noise).unwrap();
        let inf = run_baseline(&mut p, &toy_intervals(), 1, Scenario::Interference, noise).unwrap();
        assert!(inf.cycles > iso.cycles);
    }

    #[test]
    fn noise_injection_adds_unmanaged_reads() {
        let stream = LocalStore::baseline(&toy_intervals()[0]);
        let mut counter = 0;
        let noisy = inject_noise(
            &stream,
            NoiseModel {
                lines: 8,
                every: 16,
            },
            &mut counter,
        );
        assert_eq!(
            noisy.counts().cached_loads,
            stream.counts().cached_loads + 4
        );
        assert_eq!(counter, 4);
        // Noise lines rotate within the configured working set.
        let mut counter2 = 8;
        let again = inject_noise(
            &stream,
            NoiseModel {
                lines: 8,
                every: 16,
            },
            &mut counter2,
        );
        assert_eq!(again.counts().cached_loads, noisy.counts().cached_loads);
    }

    #[test]
    fn noise_off_is_identity() {
        let stream = LocalStore::baseline(&toy_intervals()[0]);
        let mut counter = 0;
        let same = inject_noise(&stream, NoiseModel::off(), &mut counter);
        assert_eq!(same, stream);
        assert_eq!(counter, 0);
    }

    #[test]
    fn noise_creates_cpmr_floor() {
        let mut p = PlatformConfig::tx1().build();
        let cfg = PremConfig::llc_tamed().with_noise(NoiseModel::tx1());
        let run = run_prem(&mut p, &toy_intervals(), &cfg, Scenario::Isolation).unwrap();
        assert!(run.cpmr > 0.0, "noise should produce some C-phase misses");
        let clean = run_prem(
            &mut p,
            &toy_intervals(),
            &PremConfig::llc_tamed(),
            Scenario::Isolation,
        )
        .unwrap();
        assert!(clean.cpmr <= run.cpmr);
    }

    #[test]
    fn deterministic_in_seed() {
        let mut p = PlatformConfig::tx1().build();
        let cfg = PremConfig::llc_tamed().with_seed(99);
        let a = run_prem(&mut p, &toy_intervals(), &cfg, Scenario::Isolation).unwrap();
        let b = run_prem(&mut p, &toy_intervals(), &cfg, Scenario::Isolation).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_prefetch_reduces_cpmr_on_toy() {
        // Make the toy footprint exceed one interval's worth of sets so
        // evictions happen: use a small biased cache.
        use prem_memsim::{CacheConfig, Policy};
        let mut cfg = PlatformConfig::tx1();
        cfg.llc = CacheConfig::new(64 * 128, 4, 128).policy(Policy::nvidia_tegra());
        let intervals: Vec<IntervalSpec> = (0..8)
            .map(|i| {
                let lines: Vec<_> = (0..48u64).map(|j| LineAddr::new(i * 48 + j)).collect();
                let acc = lines.iter().map(|&l| CAccess::read(l)).collect();
                IntervalSpec::new(lines, acc, 0)
            })
            .collect();

        let mut p = cfg.build();
        let naive = run_prem(
            &mut p,
            &intervals,
            &PremConfig::llc_tamed().with_store(LocalStore::llc_naive()),
            Scenario::Isolation,
        )
        .unwrap();
        let tamed = run_prem(
            &mut p,
            &intervals,
            &PremConfig::llc_tamed(),
            Scenario::Isolation,
        )
        .unwrap();
        assert!(
            tamed.cpmr <= naive.cpmr,
            "tamed {} vs naive {}",
            tamed.cpmr,
            naive.cpmr
        );
    }

    #[test]
    fn until_resident_stops_early_when_clean() {
        let mut p = PlatformConfig::tx1().build();
        let cfg = PremConfig::llc_tamed().with_store(LocalStore::Llc {
            prefetch: crate::local_store::PrefetchStrategy::UntilResident { max_rounds: 16 },
        });
        let run = run_prem(&mut p, &toy_intervals(), &cfg, Scenario::Isolation).unwrap();
        // The toy footprint fits trivially; two rounds suffice (fill+verify).
        assert!(run.max_rounds_used <= 3, "used {}", run.max_rounds_used);
    }
}
