//! Closed-form models from the paper's §IV, used to cross-check the
//! simulator.

use prem_memsim::CacheConfig;

/// The coin-toss model: probability that a line still resides in the bad
/// way after `r` prefetch repetitions (paper §IV). The biased victim
/// distribution gives a 1/2 chance per fill of landing in the bad way;
/// `r` repetitions drive residual bad-way residency to `0.5^r` — below
/// 0.5 % for `r ≥ 8`.
pub fn bad_way_residency(r: u32) -> f64 {
    0.5f64.powi(r as i32)
}

/// The smallest repetition factor whose coin-toss residency is below
/// `target` (e.g. `0.005` → 8).
pub fn repetitions_for_residency(target: f64) -> u32 {
    assert!(target > 0.0 && target < 1.0);
    (target.log2() / 0.5f64.log2()).ceil() as u32
}

/// The paper's interval-sizing rule (§IV): intervals must fit in the good
/// ways — for the TX1 LLC, 3/4 of 256 KiB = 192 KiB.
pub fn max_predictable_interval_bytes(llc: &CacheConfig) -> usize {
    llc.good_capacity_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::{Policy, KIB};

    #[test]
    fn r8_is_below_half_percent() {
        assert!(bad_way_residency(8) < 0.005);
        assert!(bad_way_residency(7) >= 0.005);
    }

    #[test]
    fn paper_r_is_eight() {
        assert_eq!(repetitions_for_residency(0.005), 8);
    }

    #[test]
    fn residency_decreases_monotonically() {
        for r in 1..16 {
            assert!(bad_way_residency(r + 1) < bad_way_residency(r));
        }
    }

    #[test]
    fn tx1_predictable_interval_is_192k() {
        let llc = CacheConfig::new(256 * KIB, 4, 128).policy(Policy::nvidia_tegra());
        assert_eq!(max_predictable_interval_bytes(&llc), 192 * KIB);
    }
}
