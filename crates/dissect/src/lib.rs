//! # prem-dissect — GPU cache dissection microbenchmarks
//!
//! Reproduces the methodology of Mei & Chu, *"Dissecting GPU Memory
//! Hierarchy Through Microbenchmarking"* (TPDS 2017) — the measurement the
//! paper's whole argument rests on (cited as \[13\]): NVIDIA GPU caches use
//! a *biased* random replacement where one way out of four is the eviction
//! victim half of the time.
//!
//! Three classic microbenchmarks are implemented against the simulated
//! cache:
//!
//! * [`detect_line_size`] — stride sweep: the smallest stride at which every
//!   access misses equals the line size;
//! * [`detect_capacity`] — working-set sweep: the largest footprint that
//!   still re-reads without steady-state misses;
//! * [`measure_victim_distribution`] — conflict-eviction probe recovering
//!   the per-way victim probabilities (the paper's (1/6, 1/6, 3/6, 1/6)).

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use prem_memsim::{AccessKind, Cache, CacheConfig, LineAddr, Phase, Policy};

/// Result of a full dissection run.
#[derive(Clone, Debug, PartialEq)]
pub struct DissectReport {
    /// Detected line size in bytes.
    pub line_bytes: usize,
    /// Detected capacity in bytes.
    pub capacity_bytes: usize,
    /// Detected associativity.
    pub ways: usize,
    /// Replacement-policy class inferred from thrash behaviour.
    pub policy_class: PolicyClass,
    /// Estimated per-way victim probabilities.
    pub victim_distribution: Vec<f64>,
    /// Ways classified as "good" (victim probability ≤ uniform share).
    pub good_ways: Vec<usize>,
}

/// Replacement-policy class observable from the outside.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PolicyClass {
    /// Deterministic recency/insertion order (LRU, FIFO, tree-PLRU):
    /// a round-robin working set of `ways + 1` lines thrashes completely.
    Deterministic,
    /// Randomized victim selection: the same pattern keeps a substantial
    /// hit rate because victims are spread over the set.
    Randomized,
}

/// Sweeps access strides to find the line size: with a stride below the
/// line size, consecutive accesses share lines and hit; at the line size
/// and above, every access touches a new line and misses.
pub fn detect_line_size(cfg: &CacheConfig) -> usize {
    let bytes = cfg.size_bytes() / 4; // stay well within capacity
    for stride in [4usize, 8, 16, 32, 64, 128, 256, 512] {
        let mut cache = Cache::new(cfg.clone());
        let accesses = bytes / stride;
        if accesses == 0 {
            continue;
        }
        let mut misses = 0;
        for i in 0..accesses {
            let addr = prem_memsim::Addr::new((i * stride) as u64);
            let line = addr.line(cfg.line_bytes());
            if !cache.access(line, AccessKind::Read, Phase::Unphased).hit {
                misses += 1;
            }
        }
        if misses == accesses {
            return stride;
        }
    }
    512
}

/// Sweeps working-set sizes to find the capacity: the largest power-of-two
/// footprint whose second pass has a sub-1 % miss rate. Measured with an
/// LRU-configured twin of the cache so the answer is exact (random policies
/// blur the edge, which is itself an observation of Mei et al.).
pub fn detect_capacity(cfg: &CacheConfig) -> usize {
    let lru = CacheConfig::new(cfg.size_bytes(), cfg.ways(), cfg.line_bytes())
        .index_hash(cfg.has_index_hash());
    let mut best = 0;
    let mut ws = cfg.line_bytes() * 4;
    while ws <= cfg.size_bytes() * 2 {
        let mut cache = Cache::new(lru.clone());
        let lines = ws / cfg.line_bytes();
        for i in 0..lines {
            cache.access(LineAddr::new(i as u64), AccessKind::Read, Phase::Unphased);
        }
        let mut misses = 0;
        for i in 0..lines {
            if !cache
                .access(LineAddr::new(i as u64), AccessKind::Read, Phase::Unphased)
                .hit
            {
                misses += 1;
            }
        }
        if (misses as f64) < 0.01 * lines as f64 {
            best = ws;
        }
        ws *= 2;
    }
    best
}

/// Detects the associativity: round-robin over `k` lines of one set hits
/// perfectly (after warm-up) while `k ≤ ways` on every sane policy; the
/// smallest `k` that produces steady-state misses is `ways + 1`. Measured
/// on an LRU twin so the edge is exact.
pub fn detect_ways(cfg: &CacheConfig) -> usize {
    let lru = CacheConfig::new(cfg.size_bytes(), cfg.ways(), cfg.line_bytes())
        .index_hash(cfg.has_index_hash());
    for k in 1..=(2 * cfg.ways() + 1) {
        let mut cache = Cache::new(lru.clone());
        let pool: Vec<LineAddr> = (0u64..)
            .map(LineAddr::new)
            .filter(|&l| cache.set_of(l) == 0)
            .take(k)
            .collect();
        // Warm up, then measure one sweep.
        for _ in 0..2 {
            for &l in &pool {
                cache.access(l, AccessKind::Read, Phase::Unphased);
            }
        }
        let misses = pool
            .iter()
            .filter(|&&l| !cache.access(l, AccessKind::Read, Phase::Unphased).hit)
            .count();
        if misses > 0 {
            return k - 1;
        }
    }
    2 * cfg.ways() + 1
}

/// Classifies the replacement policy from thrash behaviour: round-robin
/// over `ways + 1` conflicting lines misses 100 % under any deterministic
/// recency order but keeps hits under randomized victim selection.
pub fn classify_policy(cfg: &CacheConfig, seed: u64) -> PolicyClass {
    let mut cache = Cache::new(cfg.clone().seed(seed));
    let pool: Vec<LineAddr> = (0u64..)
        .map(LineAddr::new)
        .filter(|&l| cache.set_of(l) == 0)
        .take(cfg.ways() + 1)
        .collect();
    for &l in &pool {
        cache.access(l, AccessKind::Read, Phase::Unphased);
    }
    let sweeps = 200;
    let mut hits = 0u32;
    for _ in 0..sweeps {
        for &l in &pool {
            if cache.access(l, AccessKind::Read, Phase::Unphased).hit {
                hits += 1;
            }
        }
    }
    let hit_rate = hits as f64 / (sweeps * pool.len() as u32) as f64;
    if hit_rate > 0.05 {
        PolicyClass::Randomized
    } else {
        PolicyClass::Deterministic
    }
}

/// Estimates per-way victim probabilities with conflict evictions.
///
/// For `trials` rounds: fill one set with `ways` conflicting lines, record
/// which way each occupies, then insert one more conflicting line and
/// observe which resident line disappeared — that way was the victim.
/// Conflicting lines are found by probing the (possibly hashed) set
/// mapping, just as Mei et al. had to reverse-engineer hashed L2 indices.
pub fn measure_victim_distribution(cfg: &CacheConfig, trials: usize, seed: u64) -> Vec<f64> {
    let ways = cfg.ways();
    let mut cache = Cache::new(cfg.clone().seed(seed));
    let mut counts = vec![0u64; ways];
    let mut total = 0u64;
    // A pool of lines all mapping to set 0, discovered by probing.
    let pool: Vec<LineAddr> = (0u64..)
        .map(LineAddr::new)
        .filter(|&l| cache.set_of(l) == 0)
        .take(64)
        .collect();
    let mut next = 0usize;
    for _ in 0..trials {
        cache.invalidate_all();
        // Fill the set and remember which way holds which line.
        let mut resident: Vec<(LineAddr, usize)> = Vec::with_capacity(ways);
        for _ in 0..ways {
            let line = pool[next % pool.len()];
            next += 1;
            let out = cache.access(line, AccessKind::Read, Phase::Unphased);
            resident.push((line, out.way));
        }
        // One more conflicting access evicts somebody.
        let out = cache.access(pool[next % pool.len()], AccessKind::Read, Phase::Unphased);
        next += 1;
        if let Some(ev) = out.evicted {
            if let Some(&(_, way)) = resident.iter().find(|(l, _)| *l == ev.line) {
                counts[way] += 1;
                total += 1;
            }
        }
    }
    counts
        .iter()
        .map(|&c| {
            if total == 0 {
                0.0
            } else {
                c as f64 / total as f64
            }
        })
        .collect()
}

/// Classifies ways whose measured victim probability does not exceed the
/// uniform share (with 20 % slack) as "good".
pub fn good_ways_from_distribution(dist: &[f64]) -> Vec<usize> {
    let uniform = 1.0 / dist.len() as f64;
    dist.iter()
        .enumerate()
        .filter(|(_, &p)| p <= uniform * 1.2)
        .map(|(i, _)| i)
        .collect()
}

/// Runs the full dissection against a cache configuration.
pub fn dissect(cfg: &CacheConfig, trials: usize, seed: u64) -> DissectReport {
    let dist = measure_victim_distribution(cfg, trials, seed);
    DissectReport {
        line_bytes: detect_line_size(cfg),
        capacity_bytes: detect_capacity(cfg),
        ways: detect_ways(cfg),
        policy_class: classify_policy(cfg, seed),
        good_ways: good_ways_from_distribution(&dist),
        victim_distribution: dist,
    }
}

/// Convenience: dissects the TX1 LLC configuration the paper targets
/// (biased-random replacement, hashed set index).
pub fn dissect_tx1_llc(trials: usize, seed: u64) -> DissectReport {
    let cfg = CacheConfig::new(256 * prem_memsim::KIB, 4, 128)
        .policy(Policy::nvidia_tegra())
        .index_hash(true);
    dissect(&cfg, trials, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prem_memsim::KIB;

    fn tx1_cfg() -> CacheConfig {
        CacheConfig::new(256 * KIB, 4, 128).policy(Policy::nvidia_tegra())
    }

    #[test]
    fn line_size_recovered() {
        assert_eq!(detect_line_size(&tx1_cfg()), 128);
        let cfg64 = CacheConfig::new(64 * KIB, 4, 64);
        assert_eq!(detect_line_size(&cfg64), 64);
    }

    #[test]
    fn capacity_recovered() {
        assert_eq!(detect_capacity(&tx1_cfg()), 256 * KIB);
    }

    #[test]
    fn victim_distribution_matches_mei() {
        let dist = measure_victim_distribution(&tx1_cfg(), 20_000, 7);
        assert_eq!(dist.len(), 4);
        assert!((dist[2] - 0.5).abs() < 0.02, "bad way {:?}", dist);
        for w in [0usize, 1, 3] {
            assert!((dist[w] - 1.0 / 6.0).abs() < 0.02, "way {w}: {:?}", dist);
        }
    }

    #[test]
    fn uniform_random_has_no_bad_way() {
        let cfg = CacheConfig::new(64 * KIB, 4, 128).policy(Policy::Random);
        let dist = measure_victim_distribution(&cfg, 20_000, 3);
        for &p in &dist {
            assert!((p - 0.25).abs() < 0.02, "{dist:?}");
        }
        assert_eq!(good_ways_from_distribution(&dist).len(), 4);
    }

    #[test]
    fn lru_always_evicts_way_zero_fill_order() {
        // With LRU and strictly sequential fills, the victim is always the
        // oldest line — one way concentrates all evictions.
        let cfg = CacheConfig::new(64 * KIB, 4, 128); // LRU default
        let dist = measure_victim_distribution(&cfg, 1_000, 3);
        assert!(dist.iter().any(|&p| p > 0.99), "{dist:?}");
    }

    #[test]
    fn full_dissection_of_tx1() {
        let rep = dissect_tx1_llc(10_000, 11);
        assert_eq!(rep.line_bytes, 128);
        assert_eq!(rep.capacity_bytes, 256 * KIB);
        assert_eq!(rep.ways, 4);
        assert_eq!(rep.policy_class, PolicyClass::Randomized);
        assert_eq!(rep.good_ways, vec![0, 1, 3]);
    }

    #[test]
    fn ways_detected_across_geometries() {
        for ways in [1usize, 2, 4, 8] {
            let cfg = CacheConfig::new(64 * KIB, ways, 128);
            assert_eq!(detect_ways(&cfg), ways, "{ways}-way");
        }
    }

    #[test]
    fn policy_classification_separates_families() {
        for (policy, expect) in [
            (Policy::Lru, PolicyClass::Deterministic),
            (Policy::Fifo, PolicyClass::Deterministic),
            (Policy::PseudoLru, PolicyClass::Deterministic),
            (Policy::Srrip, PolicyClass::Deterministic),
            (Policy::Random, PolicyClass::Randomized),
            (Policy::nvidia_tegra(), PolicyClass::Randomized),
        ] {
            let cfg = CacheConfig::new(64 * KIB, 4, 128).policy(policy.clone());
            assert_eq!(classify_policy(&cfg, 3), expect, "{}", policy.name());
        }
    }
}
