//! Microbenchmarks of the trace subsystem's hot paths: encoding a
//! captured stream, decoding it back, replaying it against a cache, and
//! the PREM executor with an explicit no-op sink (directly comparable to
//! `prem_executor/llc_r8` in the `simulator` bench — the two must sit
//! within noise of each other, since the untraced entry point *is* the
//! `NullSink` monomorphization).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use prem_core::{run_prem_traced, PremConfig};
use prem_gpusim::{PlatformConfig, Scenario};
use prem_kernels::{Bicg, Kernel};
use prem_memsim::{NullSink, KIB};
use prem_trace::{capture_llc, replay_captured, CompiledStream, Trace};

fn bench_trace_roundtrip(c: &mut Criterion) {
    let (_, trace) = capture_llc(&Bicg::new(256, 256), 96 * KIB, 8, 11, Scenario::Isolation);
    let bytes = trace.encode();
    let compiled = CompiledStream::compile(&trace);
    let policy = trace.header.cache.policy_ref().clone();
    let seed = trace.header.cache.seed_value();

    let mut g = c.benchmark_group("trace");
    g.sample_size(20);
    g.throughput(Throughput::Elements(trace.events.len() as u64));
    g.bench_function("trace_encode", |b| b.iter(|| black_box(trace.encode())));
    g.bench_function("trace_decode", |b| {
        b.iter(|| black_box(Trace::decode(&bytes).expect("decode")))
    });
    g.bench_function("trace_replay", |b| {
        b.iter(|| black_box(replay_captured(&trace)))
    });
    g.bench_function("trace_replay_compiled", |b| {
        b.iter(|| black_box(compiled.replay(policy.clone(), seed)))
    });
    g.bench_function("trace_compile", |b| {
        b.iter(|| black_box(CompiledStream::compile(&trace)))
    });
    g.finish();
}

fn bench_nullsink_executor(c: &mut Criterion) {
    // Mirrors simulator.rs's prem_executor/llc_r8 exactly, through the
    // traced entry point with a no-op sink.
    let kernel = Bicg::new(256, 256);
    let intervals = kernel.intervals(96 * KIB).expect("tiling");
    let cfg = PremConfig::llc_tamed();
    let mut g = c.benchmark_group("prem_executor");
    g.sample_size(20);
    g.bench_function("llc_r8_nullsink", |b| {
        let mut platform = PlatformConfig::tx1().build();
        b.iter(|| {
            black_box(
                run_prem_traced(
                    &mut platform,
                    &intervals,
                    &cfg,
                    Scenario::Isolation,
                    &mut NullSink,
                )
                .expect("prem run"),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = trace;
    config = Criterion::default().sample_size(10);
    targets = bench_trace_roundtrip, bench_nullsink_executor
}
criterion_main!(trace);
