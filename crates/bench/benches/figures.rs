//! One criterion bench per paper artifact: each measures the end-to-end
//! regeneration of a figure on a reduced problem size (the full-size
//! artifacts are produced by the `figures` binary; see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use prem_kernels::{suite_small, Bicg};
use prem_memsim::KIB;
use prem_report::{
    ablation, common::Harness, fig2::fig2, fig3::fig35, fig4::fig4_with_sweeps, fig6::fig6,
    fig7::fig7_with_sweep, mei::mei,
};

fn bench_fig2(c: &mut Criterion) {
    let kernel = Bicg::new(256, 256);
    c.bench_function("fig2_instruction_counts", |b| {
        b.iter(|| black_box(fig2(&kernel, 96 * KIB)))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let kernel = Bicg::new(256, 256);
    let harness = Harness::quick();
    c.bench_function("fig3_breakdown_r1", |b| {
        b.iter(|| black_box(fig35(&kernel, &harness, 1, &[48, 96], &[96, 160])))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let kernel = Bicg::new(256, 256);
    let harness = Harness::quick();
    c.bench_function("fig4_cpmr_grid", |b| {
        b.iter(|| black_box(fig4_with_sweeps(&kernel, &harness, &[1, 8], &[96, 192])))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let kernel = Bicg::new(256, 256);
    let harness = Harness::quick();
    c.bench_function("fig5_breakdown_r8", |b| {
        b.iter(|| black_box(fig35(&kernel, &harness, 8, &[48, 96], &[96, 160])))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let suite = suite_small();
    let harness = Harness::quick();
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("fig6_per_kernel", |b| {
        b.iter(|| black_box(fig6(&suite, &harness, 160, 8)))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let suite = suite_small();
    let harness = Harness::quick();
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("fig7_sensitivity", |b| {
        b.iter(|| black_box(fig7_with_sweep(&suite, &harness, 8, &[96, 160])))
    });
    g.finish();
}

fn bench_mei(c: &mut Criterion) {
    c.bench_function("mei_dissection", |b| b.iter(|| black_box(mei(2_000, 7))));
}

fn bench_ablation(c: &mut Criterion) {
    let kernel = Bicg::new(256, 256);
    let harness = Harness::quick();
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("policy_ablation", |b| {
        b.iter(|| black_box(ablation::policy_ablation(&kernel, &harness, 96 * KIB, &[8])))
    });
    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2, bench_fig3, bench_fig4, bench_fig5, bench_fig6,
              bench_fig7, bench_mei, bench_ablation
}
criterion_main!(figures);
