//! Pins the zero-overhead-when-off promise of the observability layer.
//!
//! `execute` *is* `execute_metered::<NullMetrics>` — the public untraced
//! entry point delegates to the metered twin with the null sink, so the
//! no-op monomorphization is the production fast path, not a separate
//! code path that could rot. These benches time the same plan three
//! ways: direct (`execute`), explicitly null-metered, and against a live
//! registry. The first two are the same monomorphization and must be
//! indistinguishable; the third bounds the cost of recording.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use prem_harness::PlanExecutor;
use prem_kernels::Bicg;
use prem_obs::{MetricsSink, NullMetrics, Registry, Span};
use prem_report::common::Harness;
use prem_report::fig3::fig35_requests;

/// A small fig3-shaped plan: enough simulation to be realistic, small
/// enough that per-call metrics overhead would register if it existed.
fn bench_plan(c: &mut Criterion) {
    let kernel = Bicg::new(128, 128);
    let harness = Harness::quick();
    let requests = fig35_requests(&kernel, &harness, 8, &[32], &[32, 64]);
    let mut g = c.benchmark_group("obs_plan");
    g.sample_size(10);
    g.bench_function("execute_unmetered", |b| {
        b.iter(|| {
            let executor = PlanExecutor::new();
            black_box(executor.execute(&requests, 1))
        })
    });
    g.bench_function("execute_metered_null", |b| {
        b.iter(|| {
            let executor = PlanExecutor::new();
            black_box(executor.execute_metered(&requests, 1, &NullMetrics))
        })
    });
    g.bench_function("execute_metered_registry", |b| {
        let registry = Registry::new();
        b.iter(|| {
            let executor = PlanExecutor::new();
            black_box(executor.execute_metered(&requests, 1, &registry))
        })
    });
    g.finish();
}

/// The primitive costs in isolation: a disabled span (must not read the
/// clock), an enabled span, and registry counter/histogram updates.
fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_primitives");
    g.bench_function("span_null", |b| {
        b.iter(|| {
            let span = Span::start(&NullMetrics, "bench.span_ns");
            black_box(&span);
        })
    });
    let registry = Registry::new();
    g.bench_function("span_registry", |b| {
        b.iter(|| {
            let span = Span::start(&registry, "bench.span_ns");
            black_box(&span);
        })
    });
    g.bench_function("counter_add", |b| {
        b.iter(|| registry.add(black_box("bench.counter"), 1))
    });
    g.bench_function("hist_observe", |b| {
        b.iter(|| registry.observe(black_box("bench.hist_ns"), 1234))
    });
    g.finish();
}

criterion_group! {
    name = obs;
    config = Criterion::default().sample_size(10);
    targets = bench_plan, bench_primitives
}
criterion_main!(obs);
