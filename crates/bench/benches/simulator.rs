//! Microbenchmarks of the simulator itself: cache access throughput per
//! replacement policy, prefetch passes, PREM executor end-to-end, and
//! kernel tiling generation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use prem_core::{run_prem, PremConfig};
use prem_gpusim::{PlatformConfig, Scenario};
use prem_kernels::{Bicg, Kernel};
use prem_memsim::{AccessKind, Cache, CacheConfig, LineAddr, Phase, Policy, KIB};

fn bench_cache_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_access");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    for policy in [
        Policy::Lru,
        Policy::Fifo,
        Policy::PseudoLru,
        Policy::Random,
        Policy::nvidia_tegra(),
    ] {
        let name = policy.name().to_string();
        g.bench_function(&name, |b| {
            let mut cache = Cache::new(CacheConfig::new(256 * KIB, 4, 128).policy(policy.clone()));
            let mut i = 0u64;
            b.iter(|| {
                for _ in 0..n {
                    i = (i + 1) % 8192;
                    black_box(cache.access(LineAddr::new(i * 3), AccessKind::Read, Phase::CPhase));
                }
            })
        });
    }
    g.finish();
}

fn bench_index_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_hash");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    for hashed in [false, true] {
        g.bench_function(if hashed { "hashed" } else { "modulo" }, |b| {
            let mut cache = Cache::new(
                CacheConfig::new(256 * KIB, 4, 128)
                    .policy(Policy::nvidia_tegra())
                    .index_hash(hashed),
            );
            let mut i = 0u64;
            b.iter(|| {
                for _ in 0..n {
                    i = (i + 1) % 8192;
                    black_box(cache.access(LineAddr::new(i * 32), AccessKind::Read, Phase::CPhase));
                }
            })
        });
    }
    g.finish();
}

fn bench_packed_hot_path(c: &mut Criterion) {
    // The packed layout's two fast paths in isolation: a resident working
    // set drives the sentinel-tag way scan straight to the hit early
    // return, while a sweeping stride forces the miss path (invalid-way
    // probe, victim selection, fill) on every access.
    let mut g = c.benchmark_group("packed_hot_path");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("hit_return", |b| {
        let mut cache =
            Cache::new(CacheConfig::new(256 * KIB, 4, 128).policy(Policy::nvidia_tegra()));
        let resident = (256 * KIB / 128) as u64;
        for l in 0..resident {
            cache.access(LineAddr::new(l), AccessKind::Prefetch, Phase::MPhase);
        }
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..n {
                i = (i + 1) % resident;
                black_box(cache.access(LineAddr::new(i), AccessKind::Read, Phase::CPhase));
            }
        })
    });
    g.bench_function("miss_fill", |b| {
        let mut cache =
            Cache::new(CacheConfig::new(256 * KIB, 4, 128).policy(Policy::nvidia_tegra()));
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..n {
                // Stride one set past capacity so every access misses.
                i += (256 * KIB / 128 / 4) as u64 + 1;
                black_box(cache.access(LineAddr::new(i), AccessKind::Write, Phase::CPhase));
            }
        })
    });
    g.finish();
}

fn bench_prem_executor(c: &mut Criterion) {
    let kernel = Bicg::new(256, 256);
    let intervals = kernel.intervals(96 * KIB).expect("tiling");
    let mut g = c.benchmark_group("prem_executor");
    g.sample_size(20);
    for (name, cfg) in [
        ("llc_r8", PremConfig::llc_tamed()),
        ("spm", PremConfig::spm()),
    ] {
        g.bench_function(name, |b| {
            let mut platform = PlatformConfig::tx1().build();
            b.iter(|| {
                black_box(
                    run_prem(&mut platform, &intervals, &cfg, Scenario::Isolation)
                        .expect("prem run"),
                )
            })
        });
    }
    g.finish();
}

fn bench_tiling(c: &mut Criterion) {
    let kernel = Bicg::new(1024, 1024);
    c.bench_function("bicg_tiling_160k", |b| {
        b.iter(|| black_box(kernel.intervals(160 * KIB).expect("tiling")))
    });
}

criterion_group! {
    name = simulator;
    config = Criterion::default().sample_size(10);
    targets = bench_cache_policies, bench_index_hash, bench_packed_hot_path,
              bench_prem_executor, bench_tiling
}
criterion_main!(simulator);
