//! CLI regression tests for the `figures` binary's filesystem behavior.
//!
//! The artifact writers used to assume `results/` (and the cache
//! directory) already existed, which broke the first render into a fresh
//! checkout or a relocated `--cache-dir`. Every write now goes through
//! [`prem_harness::write_artifact`] (and `RunStore::open` creates its own
//! tree), so rendering into a *freshly created, nested* output and cache
//! directory must succeed end to end — this test runs the real binary to
//! pin that.

use std::path::PathBuf;
use std::process::Command;

#[test]
fn whatif_quick_renders_into_fresh_nested_output_and_cache_dirs() {
    let scratch: PathBuf =
        std::env::temp_dir().join(format!("prem-figures-cli-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    // Only the working directory itself exists; `results/` below it and
    // the deeply nested cache path must be created by the binary.
    std::fs::create_dir_all(&scratch).expect("create scratch cwd");
    let cache_dir = scratch.join("deep/ly/nested/.runcache");

    let out = Command::new(env!("CARGO_BIN_EXE_figures"))
        .current_dir(&scratch)
        .arg("whatif")
        .arg("quick")
        .arg("--cache-dir")
        .arg(&cache_dir)
        .output()
        .expect("run figures binary");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "figures failed in a fresh nested tree: {}\n{stderr}",
        out.status
    );

    for name in ["whatif.txt", "whatif.csv"] {
        let path = scratch.join("results").join(name);
        let len = std::fs::metadata(&path)
            .unwrap_or_else(|e| panic!("missing artifact {}: {e}", path.display()))
            .len();
        assert!(len > 0, "empty artifact {}", path.display());
    }
    assert!(
        cache_dir.is_dir(),
        "nested --cache-dir was not created: {}",
        cache_dir.display()
    );
    // The quick what-if plan is one derivation family: the run summary
    // must report replay engagement (the same line CI greps for).
    let plan_line = stderr
        .lines()
        .find(|l| l.contains("plan: requested="))
        .unwrap_or_else(|| panic!("no plan summary in stderr:\n{stderr}"));
    assert!(
        !plan_line.contains("replayed=0"),
        "quick what-if plan reported no replays: {plan_line}"
    );
    std::fs::remove_dir_all(&scratch).ok();
}
