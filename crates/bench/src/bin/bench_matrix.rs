//! CI performance gate over the quick scenario matrix, the trace
//! subsystem's hot paths and the run-plan layer.
//!
//! Runs every cell of the quick matrix **sequentially**, timing each one,
//! then times the trace pipeline on the quick capture kernel (capture,
//! encode, decode, and one replay per replacement policy), then the
//! run-plan hot paths (plan expansion, dedup of an already-cached plan
//! resubmission, the cache-hit lookup path, the observability layer's
//! metrics-off and metrics-on executions, the persistent run
//! store's cold — execute + append — and warm — all disk hits — paths,
//! the packed cache layout's raw access throughput, and the
//! profile-memo column — memoization off vs on over one interference
//! sweep's scenario siblings), and writes
//! `results/BENCH_matrix.json` (wall-time per entry + total). The total
//! is compared against a committed baseline (`ci/bench_baseline.json` by
//! default): a regression beyond the tolerance fails the process, which
//! is what gates the CI `bench` job — covering the replay fast path and
//! the plan cache the same way it covers the simulator.
//!
//! Sequential timing is deliberate: the sum of per-cell times is stable
//! across host core counts, while a parallel wall-time would make the
//! gate depend on the runner's machine shape.
//!
//! Environment:
//!
//! * `PREM_BENCH_BASELINE` — path of the baseline JSON (default
//!   `ci/bench_baseline.json`);
//! * `PREM_BENCH_TOLERANCE` — allowed fractional regression (default
//!   `0.25` = 25 %);
//! * `PREM_BENCH_WRITE_BASELINE=1` — rewrite the baseline from this run
//!   and exit successfully (how the committed numbers are refreshed).
//!
//! Flags: the shared executor flags (`prem_harness::flags`) are parsed
//! so the spelling matches `figures` and `serve`, but only `--cache-dir`
//! (relocating the scratch stores) is honored — the cache/replay toggles
//! are rejected because the store and replay tiers are what the gate
//! measures.

use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;
use std::time::Instant;

use prem_gpusim::CorunnerProfile;
use prem_harness::{
    run_cell, write_artifact, ExecFlags, MatrixScenario, MatrixSpec, PlanExecutor, RunSource,
    RunStore, EXEC_FLAGS_HELP,
};
use prem_kernels::{suite_small, Bicg};
use prem_report::common::Harness;
use prem_report::fig3::fig35_requests;
use prem_report::whatif::whatif_requests;

/// Formats one measured cell as a JSON object line.
fn cell_json(key: &str, ms: f64) -> String {
    format!("    {{\"key\": \"{key}\", \"ms\": {ms:.3}}}")
}

/// Extracts the `"total_ms"` number from a baseline JSON document.
///
/// The workspace is offline (no serde); the baseline format is fixed and
/// produced by this binary, so a targeted scan is all the parsing needed.
fn parse_total_ms(json: &str) -> Option<f64> {
    let idx = json.find("\"total_ms\"")?;
    let rest = &json[idx + "\"total_ms\"".len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    // Shared executor flags: `--cache-dir` relocates the scratch stores
    // this gate builds and deletes; the cache/replay toggles are
    // rejected because the store tiers and the replay column ARE the
    // measured scenario — a gate timed with them off would compare
    // incomparable numbers against the committed baseline.
    let (flags, rest) = ExecFlags::parse(std::env::temp_dir(), std::env::args().skip(1))
        .unwrap_or_else(|e| {
            eprintln!("bench_matrix: {e}\n\nexecutor flags:\n{EXEC_FLAGS_HELP}");
            std::process::exit(2);
        });
    if flags.cache_overridden() || flags.replay_overridden() || flags.metrics_enabled() {
        eprintln!(
            "bench_matrix: --cache/--no-cache/--no-replay/--metrics would unground \
             the gate's baseline (the obs entries already time metrics on and off); \
             only --cache-dir is honored here"
        );
        return ExitCode::from(2);
    }
    if let Some(extra) = rest.first() {
        eprintln!("bench_matrix: unexpected argument `{extra}`");
        return ExitCode::from(2);
    }
    let scratch_root = flags.cache_dir.clone();

    let spec = MatrixSpec::quick(suite_small());
    let cells = spec.expand();
    eprintln!(
        "[bench_matrix: timing {} quick cells sequentially]",
        cells.len()
    );

    let mut cell_lines = Vec::with_capacity(cells.len());
    let mut total_ms = 0.0f64;
    for cell in &cells {
        let key = format!(
            "{}({})|{}|{}|{}#{}",
            spec.kernels[cell.kernel].name(),
            spec.kernels[cell.kernel].dims(),
            spec.platforms[cell.platform].name,
            spec.policies[cell.policy].name(),
            cell.scenario.name(),
            cell.seed_index,
        );
        let t0 = Instant::now();
        let _ = run_cell(&spec, cell);
        let ms = t0.elapsed().as_secs_f64() * 1000.0;
        total_ms += ms;
        cell_lines.push(cell_json(&key, ms));
    }

    // Trace pipeline: capture once, then exercise every hot path the
    // replay engine rests on. Timed sequentially like the cells, so the
    // committed total stays machine-shape independent.
    let mut timed = |key: &str, ms: f64| {
        total_ms += ms;
        cell_lines.push(cell_json(key, ms));
    };
    let t0 = Instant::now();
    let (_, trace) = prem_trace::quick_capture();
    timed(
        "trace:capture|bicg(512x512)",
        t0.elapsed().as_secs_f64() * 1000.0,
    );
    let t0 = Instant::now();
    let bytes = trace.encode();
    timed(
        "trace:encode|bicg(512x512)",
        t0.elapsed().as_secs_f64() * 1000.0,
    );
    let t0 = Instant::now();
    let decoded = prem_trace::Trace::decode(&bytes).expect("trace decode");
    timed(
        "trace:decode|bicg(512x512)",
        t0.elapsed().as_secs_f64() * 1000.0,
    );
    drop(decoded);
    let t0 = Instant::now();
    let compiled = prem_trace::CompiledStream::compile(&trace);
    timed(
        "trace:compile|bicg(512x512)",
        t0.elapsed().as_secs_f64() * 1000.0,
    );
    let seed = trace.header.cache.seed_value();
    for (name, policy) in prem_trace::default_policy_axis(trace.header.cache.ways()) {
        let t0 = Instant::now();
        let _ = compiled.replay(policy, seed);
        timed(
            &format!("trace:replay|{name}"),
            t0.elapsed().as_secs_f64() * 1000.0,
        );
    }

    // Run-plan layer hot paths, on a small kernel so the entries time the
    // plan machinery plus a bounded amount of simulation. Expansion builds
    // a fig3-shaped plan (requests + canonical keys), `plan:execute`
    // executes its unique frontier once, `plan:dedup` resubmits the same
    // plan (all cache hits, nothing re-executes), and `plan:cache-hit`
    // serves every request through the lazy lookup path.
    let bicg = Bicg::new(128, 128);
    let harness = Harness::quick();
    let plan_requests = || fig35_requests(&bicg, &harness, 8, &[32, 48], &[32, 64]);
    let t0 = Instant::now();
    let mut key_bytes = 0usize;
    for _ in 0..100 {
        key_bytes += plan_requests().iter().map(|r| r.key().len()).sum::<usize>();
    }
    assert!(key_bytes > 0);
    timed(
        "plan:expand|fig35(bicg 128x128) x100",
        t0.elapsed().as_secs_f64() * 1000.0,
    );
    let requests = plan_requests();
    let executor = PlanExecutor::new();
    let t0 = Instant::now();
    let first = executor.execute(&requests, 1);
    timed(
        "plan:execute|unique frontier",
        t0.elapsed().as_secs_f64() * 1000.0,
    );
    assert!(first.executed > 0 && first.hits == 0);
    let t0 = Instant::now();
    let resubmit = executor.execute(&requests, 1);
    timed(
        "plan:dedup|resubmission",
        t0.elapsed().as_secs_f64() * 1000.0,
    );
    assert_eq!(resubmit.executed, 0, "resubmitted plan must be all hits");
    let t0 = Instant::now();
    for req in &requests {
        let _ = executor.output(req);
    }
    timed(
        "plan:cache-hit|lookup path",
        t0.elapsed().as_secs_f64() * 1000.0,
    );
    assert_eq!(
        executor.executed_runs(),
        first.executed,
        "cache-hit path must not execute"
    );

    // Observability overhead: the same fig35 plan executed through the
    // metered entry point against the null sink (`execute` itself is this
    // monomorphization — it must track `plan:execute` above) and against
    // a live registry (bounds the cost of actually recording). Both feed
    // the gated total, so a metrics-path regression trips the baseline.
    let t0 = Instant::now();
    let obs_off = PlanExecutor::new();
    let off_summary = obs_off.execute_metered(&requests, 1, &prem_obs::NullMetrics);
    timed(
        "obs:off|null-sink execute",
        t0.elapsed().as_secs_f64() * 1000.0,
    );
    assert_eq!(off_summary.executed, first.executed);
    let registry = prem_obs::Registry::new();
    let t0 = Instant::now();
    let obs_on = PlanExecutor::new();
    let on_summary = obs_on.execute_metered(&requests, 1, &registry);
    timed(
        "obs:on|registry execute",
        t0.elapsed().as_secs_f64() * 1000.0,
    );
    assert_eq!(on_summary.executed, first.executed);
    {
        use prem_obs::MetricsSink as _;
        assert!(
            !prem_obs::NullMetrics.enabled() && registry.enabled(),
            "sink enablement must match what the two entries timed"
        );
    }
    assert_eq!(
        registry
            .snapshot()
            .counter("plan.live_runs")
            .expect("metered run records plan.live_runs"),
        first.executed as u64,
    );

    // Persistent run store: `store:cold` executes the same plan through a
    // store-backed executor and appends every output to a scratch store
    // on disk; `store:warm` reopens that store from a fresh executor (≈ a
    // second process) and must serve the whole plan from disk — zero live
    // executions — timing the segment parse + decode path.
    let store_dir = scratch_root.join(format!("prem-bench-store-{}", std::process::id()));
    let _ = fs::remove_dir_all(&store_dir);
    let t0 = Instant::now();
    let cold =
        PlanExecutor::new().with_store(RunStore::open(&store_dir).expect("open bench store"));
    let cold_summary = cold.execute(&requests, 1);
    timed(
        "store:cold|execute+append",
        t0.elapsed().as_secs_f64() * 1000.0,
    );
    assert_eq!(
        (cold_summary.executed, cold_summary.disk_hits),
        (first.executed, 0),
        "cold store run must execute the full unique frontier"
    );
    let t0 = Instant::now();
    let warm =
        PlanExecutor::new().with_store(RunStore::open(&store_dir).expect("reopen bench store"));
    let warm_summary = warm.execute(&requests, 1);
    timed("store:warm|disk-hit", t0.elapsed().as_secs_f64() * 1000.0);
    assert_eq!(
        (warm_summary.executed, warm_summary.disk_hits),
        (0, first.executed),
        "warm store run must be all disk hits"
    );
    let _ = fs::remove_dir_all(&store_dir);

    // Replay-backed derivation (PR 7): a cold 7-policy × 3-seed what-if
    // column, timed three ways. `plan:column|live` executes all 21 runs
    // live (the `--no-replay` path), `plan:replay|cold` executes one
    // representative live and derives the 20 siblings from its capture,
    // `plan:replay|warm` re-renders the column from a fresh store-backed
    // executor (pure disk hits, replayed outputs included). The cold
    // live/replay ratio is the acceptance criterion of the derivation
    // family work and is asserted hard at ≥3×, on top of the baseline
    // total gating all entries.
    let column_kernel = Bicg::new(96, 96);
    let column = whatif_requests(&column_kernel);
    // The ratio gate compares min-of-3 cold executions per side: each rep
    // is a fresh executor, the min discards scheduler noise without hiding
    // a real regression.
    const COLUMN_REPS: usize = 3;
    let mut live_ms = f64::INFINITY;
    let mut live_exec = PlanExecutor::new().without_replay();
    for _ in 0..COLUMN_REPS {
        let exec = PlanExecutor::new().without_replay();
        let t0 = Instant::now();
        let live_summary = exec.execute(&column, 1);
        live_ms = live_ms.min(t0.elapsed().as_secs_f64() * 1000.0);
        assert_eq!(
            (live_summary.executed, live_summary.replayed),
            (column.len(), 0),
            "--no-replay column must execute every run live"
        );
        live_exec = exec;
    }
    timed("plan:column|live 7x3", live_ms);
    let mut replay_ms = f64::INFINITY;
    let mut replay_exec = PlanExecutor::new();
    for _ in 0..COLUMN_REPS {
        let exec = PlanExecutor::new();
        let t0 = Instant::now();
        let replay_summary = exec.execute(&column, 1);
        replay_ms = replay_ms.min(t0.elapsed().as_secs_f64() * 1000.0);
        assert_eq!(
            (
                replay_summary.executed,
                replay_summary.replayed,
                replay_summary.families
            ),
            (1, column.len() - 1, 1),
            "the what-if column is one derivation family"
        );
        replay_exec = exec;
    }
    timed("plan:replay|cold 7x3", replay_ms);
    for req in &column {
        assert_eq!(
            replay_exec.output(req),
            live_exec.output(req),
            "replayed output diverged from live for {}",
            req.key()
        );
    }
    // Replayed outputs are first-class store citizens: persist the column
    // through a store-backed replay executor (untimed — disk cost is the
    // store's own benchmark), then time a warm re-render where every run,
    // the 20 derived ones included, is a disk hit.
    let replay_store = scratch_root.join(format!("prem-bench-replay-{}", std::process::id()));
    let _ = fs::remove_dir_all(&replay_store);
    PlanExecutor::new()
        .with_store(RunStore::open(&replay_store).expect("open replay store"))
        .execute(&column, 1);
    let t0 = Instant::now();
    let warm_replay =
        PlanExecutor::new().with_store(RunStore::open(&replay_store).expect("reopen replay store"));
    let warm_column = warm_replay.execute(&column, 1);
    timed("plan:replay|warm 7x3", t0.elapsed().as_secs_f64() * 1000.0);
    assert_eq!(
        (
            warm_column.executed + warm_column.replayed,
            warm_column.disk_hits
        ),
        (0, column.len()),
        "replayed outputs must be disk hits in a fresh process"
    );
    let _ = fs::remove_dir_all(&replay_store);
    let speedup = live_ms / replay_ms;
    eprintln!(
        "[bench_matrix: what-if column {}x{} replay speedup {speedup:.2}x \
         (live {live_ms:.1} ms, replay {replay_ms:.1} ms)]",
        column.len() / 3,
        3
    );
    // Fused self-profiling (PR 10) cut the live side's cost roughly in
    // half — a live cell no longer pays a separate profiling pass — so
    // the replay elision's margin over live shrank from ~4x to ~1.7x.
    // The gate guards the ordering (replay must stay cheaper than the
    // now-compiled live path), not the old margin.
    assert!(
        speedup >= 1.3,
        "replay-backed column must be ≥1.3x faster than live \
         (got {speedup:.2}x: live {live_ms:.1} ms, replay {replay_ms:.1} ms)"
    );

    // Compiled live execution (PR 10). `exec:hotpath` times the packed
    // cache layout directly — a TX1-shaped LLC driven through a mixed
    // hit/miss stream, counting the sentinel-tag way scan, the hit early
    // return and the miss fill path with nothing else on the clock.
    let mut hot = prem_memsim::Cache::new(
        prem_memsim::CacheConfig::new(256 * prem_memsim::KIB, 4, 128)
            .policy(prem_memsim::Policy::nvidia_tegra()),
    );
    let hot_lines = (256 * prem_memsim::KIB / 128) as u64;
    let t0 = Instant::now();
    let mut sweep = hot_lines;
    for i in 0..2_000_000u64 {
        // Three strides over a half-capacity resident window (hits after
        // the first lap), then one step of an ever-advancing sweep
        // (misses): ~3/4 hit path, ~1/4 miss path.
        let line = if i % 4 == 3 {
            sweep += 1;
            sweep
        } else {
            (i * 3) % (hot_lines / 2)
        };
        let _ = hot.access(
            prem_memsim::LineAddr::new(line),
            if i % 8 == 0 {
                prem_memsim::AccessKind::Write
            } else {
                prem_memsim::AccessKind::Read
            },
            prem_memsim::Phase::CPhase,
        );
    }
    timed(
        "exec:hotpath|packed 2M accesses",
        t0.elapsed().as_secs_f64() * 1000.0,
    );
    let hot_stats = hot.stats();
    assert!(
        hot_stats.c_phase.hits > 0 && hot_stats.c_phase.misses > 0,
        "hot-path stream must exercise both the hit and the miss path"
    );

    // `exec:profile-memo|cold` vs `|warm`: an interference-sweep-shaped
    // scenario column — co-runner profiles × counts 0..=6, all siblings
    // of ONE profile key — executed with memoization off (every cell pays
    // its own profiling pass) and on (the column charges a single pass).
    // Since fused self-profiling, constant-contention unpolluted mixes
    // profile inside their own timed run even with the memo off, so the
    // column uses mixes the fusion cannot touch — time-varying (bursty)
    // contention — where the per-cell pass is still real work the memo
    // elides. Bursty mixes are non-polluting, so the pass and the timed
    // run cost about the same (both take the fixed-round all-hit
    // shortcut) and the elided pass shows as a ~2x cold/warm gap; a
    // polluting profile would deflate the ratio instead (its timed run
    // cannot shortcut, dwarfing the pass). R=16 keeps the column
    // M-phase-heavy: the M-pass costs the same in the profiling pass and
    // the timed run, so the sweep's co-runner C-phase overhead does not
    // drown the pass the memo elides. The cold/warm ratio is asserted
    // hard at ≥1.5×, on top of the baseline total gating both entries.
    let memo_kernel = Bicg::new(256, 256);
    let mut memo_column: Vec<prem_harness::RunRequest<'_>> = Vec::new();
    for (pi, profile) in [
        CorunnerProfile::Bursty {
            duty: 0.5,
            period_cycles: 80_000.0,
        },
        CorunnerProfile::Bursty {
            duty: 0.25,
            period_cycles: 40_000.0,
        },
    ]
    .into_iter()
    .enumerate()
    {
        // Count 0 is the same isolation scenario for every profile — the
        // plan would dedupe the repeat, so only the first sweep keeps it.
        for scenario in MatrixScenario::count_sweep(profile, 6)
            .into_iter()
            .skip(usize::from(pi > 0))
        {
            memo_column.push(prem_harness::RunRequest {
                kernel: &memo_kernel,
                platform: prem_harness::PlatformSpec::tx1(),
                work: prem_core::RunWork::PremLlc { r: 16 },
                t_bytes: 224 * prem_memsim::KIB,
                seed: 11,
                scenario,
                noise: prem_core::NoiseModel::tx1(),
            });
        }
    }
    // min-of-5 per side: the ratio gate needs tighter reps than the
    // 3x column gates because its threshold sits closer to the measured
    // value.
    const MEMO_REPS: usize = 5;
    let mut cold_ms = f64::INFINITY;
    for _ in 0..MEMO_REPS {
        let exec = PlanExecutor::new().without_profile_memo();
        let t0 = Instant::now();
        let cold_summary = exec.execute(&memo_column, 1);
        cold_ms = cold_ms.min(t0.elapsed().as_secs_f64() * 1000.0);
        assert_eq!(
            (cold_summary.executed, cold_summary.profile_misses),
            (memo_column.len(), 0),
            "memo-off column must profile per cell and count nothing"
        );
    }
    timed("exec:profile-memo|cold 13-cell", cold_ms);
    let mut warm_ms = f64::INFINITY;
    for _ in 0..MEMO_REPS {
        let exec = PlanExecutor::new();
        let t0 = Instant::now();
        let warm_summary = exec.execute(&memo_column, 1);
        warm_ms = warm_ms.min(t0.elapsed().as_secs_f64() * 1000.0);
        assert_eq!(
            (warm_summary.profile_misses, warm_summary.profile_hits),
            (1, memo_column.len() - 1),
            "the scenario column shares one profile key"
        );
    }
    timed("exec:profile-memo|warm 13-cell", warm_ms);
    let memo_speedup = cold_ms / warm_ms;
    eprintln!(
        "[bench_matrix: profile-memo column {}-cell speedup {memo_speedup:.2}x \
         (cold {cold_ms:.1} ms, warm {warm_ms:.1} ms)]",
        memo_column.len()
    );
    assert!(
        memo_speedup >= 1.5,
        "memoized profiling must be ≥1.5x faster than per-cell profiling \
         (got {memo_speedup:.2}x: cold {cold_ms:.1} ms, warm {warm_ms:.1} ms)"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"prem-bench-matrix/v1\",");
    let _ = writeln!(json, "  \"matrix\": \"quick\",");
    let _ = writeln!(json, "  \"cell_count\": {},", cells.len());
    let _ = writeln!(json, "  \"entry_count\": {},", cell_lines.len());
    let _ = writeln!(json, "  \"total_ms\": {total_ms:.3},");
    let _ = writeln!(json, "  \"cells\": [");
    let _ = writeln!(json, "{}", cell_lines.join(",\n"));
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    write_artifact("results/BENCH_matrix.json", json.as_bytes());
    eprintln!("[bench_matrix: total {total_ms:.1} ms -> results/BENCH_matrix.json]");

    let baseline_path = std::env::var("PREM_BENCH_BASELINE")
        .unwrap_or_else(|_| "ci/bench_baseline.json".to_string());
    if std::env::var("PREM_BENCH_WRITE_BASELINE").as_deref() == Ok("1") {
        write_artifact(&baseline_path, json.as_bytes());
        eprintln!("[bench_matrix: baseline rewritten at {baseline_path}]");
        return ExitCode::SUCCESS;
    }

    let tolerance: f64 = std::env::var("PREM_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let baseline = match fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_total_ms(&text) {
            Some(ms) => ms,
            None => {
                eprintln!("[bench_matrix: {baseline_path} has no total_ms — failing]");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("[bench_matrix: cannot read {baseline_path}: {e} — failing]");
            return ExitCode::FAILURE;
        }
    };

    let limit = baseline * (1.0 + tolerance);
    if total_ms > limit {
        eprintln!(
            "[bench_matrix: REGRESSION — {total_ms:.1} ms > {limit:.1} ms \
             (baseline {baseline:.1} ms + {:.0}%)]",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        eprintln!(
            "[bench_matrix: OK — {total_ms:.1} ms within {limit:.1} ms \
             (baseline {baseline:.1} ms + {:.0}%)]",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    }
}
