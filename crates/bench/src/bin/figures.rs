//! Regenerates every table and figure of the paper into `results/`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p prem-bench --bin figures            # every paper figure
//! cargo run --release -p prem-bench --bin figures -- all     # same, explicitly
//! cargo run --release -p prem-bench --bin figures -- fig4    # one artifact
//! cargo run --release -p prem-bench --bin figures -- quick   # reduced sizes
//! cargo run --release -p prem-bench --bin figures -- matrix  # scenario matrix
//! cargo run --release -p prem-bench --bin figures -- trace   # capture + replay
//! cargo run --release -p prem-bench --bin figures -- --list  # artifact map
//! cargo run --release -p prem-bench --bin figures -- obs     # phase timings
//! cargo run --release -p prem-bench --bin figures -- cache stats   # store shape
//! cargo run --release -p prem-bench --bin figures -- cache verify  # full decode
//! cargo run --release -p prem-bench --bin figures -- cache gc      # drop dead keys
//! ```
//!
//! Unknown subcommands exit nonzero with the artifact listing.
//!
//! The simulator-heavy figures (3/4/5/6/7) are executed as **one merged,
//! deduplicated run plan**: their `*_requests` builders are concatenated,
//! the [`prem_harness::PlanExecutor`] elides every request two figures
//! share (fig3/fig5/fig6/fig7 overlap heavily on baselines and LLC grid
//! points) and executes the unique frontier on the work-claiming pool at
//! *run* granularity — so a parallel run is no longer bounded by the
//! largest single figure. The unique frontier is further partitioned into
//! **derivation families** (requests differing only in LLC policy/seed):
//! one representative per family executes live with what-if capture on
//! and every sibling's output is derived by replay, bit-identical by the
//! plan-replay equivalence suite (`--no-replay` opts out). A
//! per-invocation plan summary (unique runs, duplicates elided, cache
//! hits, replays, families) is printed to stderr; CI asserts the elision
//! count is nonzero and, on the quick merged plan, `replayed > 0`. The remaining artifacts run as
//! job-granular pool tasks exactly as before (`PREM_WORKERS` overrides
//! the worker count); outputs are collected and written in a fixed order,
//! so the artifacts are byte-identical to a sequential run.
//!
//! The plan executor is backed by the **persistent run cache**
//! (`results/.runcache/` by default — see `CACHING.md`): every live
//! execution is appended to the store and every later invocation serves
//! matching requests from disk, so a warm regeneration executes nothing.
//! `--no-cache` runs fully live (artifacts are byte-identical either
//! way), `--cache` re-enables it, `--cache-dir <path>` relocates the
//! store, and `cache {stats,verify,gc}` introspects it.
//!
//! Under `--metrics` the executor and store record into a `prem-obs`
//! registry and the snapshot is written to `<metrics-dir>/metrics.json`
//! (versioned single-line JSON) when the run finishes. The `obs`
//! subcommand (explicit only) runs the what-if plan metered and renders
//! the phase-timing breakdown as `results/obs.{txt,csv}`. Metrics never
//! influence run outputs: every artifact is byte-identical with metrics
//! on or off, and with no registry the metered entry points
//! monomorphize to the no-op null sink.

use std::collections::HashSet;
use std::path::Path;
use std::time::Instant;

use prem_harness::{
    cell_requests, default_workers, parallel_map, run_matrix_metered, write_artifact, ExecFlags,
    MatrixSpec, PlanExecutor, RunRequest, RunStore, EXEC_FLAGS_HELP,
};
use prem_kernels::{case_study_bicg, standard_suite, suite_small, Bicg};
use prem_memsim::KIB;
use prem_obs::{NullMetrics, Registry, Span};
use prem_report::{
    ablation,
    common::Harness,
    fig2::fig2,
    fig3::{fig3_requests, fig3_with, fig5_requests, fig5_with},
    fig4::{fig4_requests, fig4_with},
    fig6::{fig6_followup_requests, fig6_requests, fig6_with},
    fig7::{fig7_requests, fig7_with},
    interference,
    mei::mei,
    obs::{obs_counters, obs_table},
    whatif::{whatif_requests, whatif_with},
    Table,
};

/// One finished artifact: the text rendering (table + optional chart), an
/// optional CSV body, and a completion log line for stderr.
struct Artifact {
    name: String,
    text: String,
    csv: Option<String>,
    log: String,
}

impl Artifact {
    fn from_table(name: &str, table: &Table, extra: &str, t0: Instant) -> Self {
        Artifact {
            name: name.to_string(),
            text: format!("{table}\n{extra}"),
            csv: Some(table.to_csv()),
            log: format!("[{name} done in {:?}]", t0.elapsed()),
        }
    }
}

/// Inputs shared by every figure job, plus the process-wide run-plan
/// executor: the plan-based figures render from its cache after the merged
/// plan has executed, and the matrix shares the same cache when requested.
struct Ctx {
    quick: bool,
    harness: Harness,
    bicg: Bicg,
    suite: Vec<Box<dyn prem_kernels::Kernel>>,
    executor: PlanExecutor,
}

type Job = (&'static str, &'static str, fn(&Ctx) -> Vec<Artifact>);

/// The paper-figure jobs, in output order, each with the artifact line
/// shown by `--list` — one table drives both dispatch and listing, so
/// the two cannot drift. `matrix` and `trace` are handled separately
/// (see [`EXPLICIT_JOBS`]): they parallelize internally and run only
/// when named.
const JOBS: &[Job] = &[
    (
        "fig1",
        "fig1.txt — PREM interval timeline (M/C phases, token exchange)",
        |ctx| {
            use prem_core::{run_prem, NoiseModel, PremConfig, SyncConfig};
            use prem_gpusim::{PlatformConfig, Scenario};
            use prem_kernels::Kernel;
            let t0 = Instant::now();
            let intervals = ctx.bicg.intervals(160 * KIB).expect("tiling");
            let mut platform = PlatformConfig::tx1().build();
            let cfg = PremConfig::llc_tamed().with_noise(NoiseModel::tx1());
            let run =
                run_prem(&mut platform, &intervals, &cfg, Scenario::Isolation).expect("prem run");
            let text =
                prem_report::fig1::timeline(&run, &SyncConfig::tx1(), platform.clock_ghz, 4, 0.4);
            vec![Artifact {
                name: "fig1".into(),
                text,
                csv: None,
                log: format!("[fig1 done in {:?}]", t0.elapsed()),
            }]
        },
    ),
    (
        "fig2",
        "fig2.{txt,csv} — SPM vs cache data-movement instruction counts",
        |ctx| {
            let t0 = Instant::now();
            let f = fig2(&ctx.bicg, 160 * KIB);
            vec![Artifact::from_table("fig2", &f.table(), "", t0)]
        },
    ),
    (
        "fig3",
        "fig3.{txt,csv} — bicg breakdown, naive prefetch (R=1)",
        |ctx| {
            let t0 = Instant::now();
            let f = fig3_with(&ctx.bicg, &ctx.harness, &ctx.executor);
            vec![Artifact::from_table("fig3", &f.table(), &f.chart(), t0)]
        },
    ),
    (
        "fig4",
        "fig4.{txt,csv} — CPMR over the (R, T) grid",
        |ctx| {
            let t0 = Instant::now();
            let f = fig4_with(&ctx.bicg, &ctx.harness, &ctx.executor);
            vec![Artifact::from_table("fig4", &f.table(), "", t0)]
        },
    ),
    (
        "fig5",
        "fig5.{txt,csv} — bicg breakdown, tamed prefetch (R=8)",
        |ctx| {
            let t0 = Instant::now();
            let f = fig5_with(&ctx.bicg, &ctx.harness, &ctx.executor);
            vec![Artifact::from_table("fig5", &f.table(), &f.chart(), t0)]
        },
    ),
    (
        "fig6",
        "fig6.{txt,csv} — per-kernel fair co-scheduling comparison",
        |ctx| {
            let t0 = Instant::now();
            let f = fig6_with(&ctx.suite, &ctx.harness, 160, 8, &ctx.executor);
            vec![Artifact::from_table("fig6", &f.table(), "", t0)]
        },
    ),
    (
        "fig7",
        "fig7.{txt,csv} — interference sensitivity vs T",
        |ctx| {
            let t0 = Instant::now();
            let f = fig7_with(&ctx.suite, &ctx.harness, 8, &ctx.executor);
            vec![Artifact::from_table("fig7", &f.table(), "", t0)]
        },
    ),
    (
        "whatif",
        "whatif.{txt,csv} — LLC policy what-if sweep (replay-derived)",
        |ctx| {
            let t0 = Instant::now();
            let w = whatif_with(&ctx.bicg, &ctx.executor);
            vec![Artifact::from_table("whatif", &w.table(), "", t0)]
        },
    ),
    (
        "interference",
        "interference_sweep.{txt,csv} — co-runner count sweep",
        |ctx| {
            let t0 = Instant::now();
            let rows = interference_sweep_rows(ctx);
            vec![Artifact::from_table(
                "interference_sweep",
                &interference::sweep_table(&rows, "bicg", 160, 8),
                "",
                t0,
            )]
        },
    ),
    (
        "mei",
        "mei.{txt,csv} — biased-random replacement validation",
        |ctx| {
            let t0 = Instant::now();
            let (_, table) = mei(if ctx.quick { 5_000 } else { 50_000 }, 7);
            vec![Artifact::from_table("mei", &table, "", t0)]
        },
    ),
    (
        "ablation",
        "ablation_{policy,msg,adaptive,bias}.{txt,csv} — beyond-paper ablations",
        |ctx| {
            // Each ablation gets its own t0 so the log lines report per-artifact
            // cost, not cumulative elapsed time.
            let t0 = Instant::now();
            let mut out = Vec::new();
            let rows = ablation::policy_ablation(&ctx.bicg, &ctx.harness, 160 * KIB, &[1, 8]);
            out.push(Artifact::from_table(
                "ablation_policy",
                &ablation::policy_table(&rows, 160),
                "",
                t0,
            ));
            let t0 = Instant::now();
            let rows = ablation::msg_ablation(
                &ctx.bicg,
                &ctx.harness,
                96 * KIB,
                160 * KIB,
                &[5.0, 10.0, 20.0, 50.0, 100.0],
            );
            out.push(Artifact::from_table(
                "ablation_msg",
                &ablation::msg_table(&rows, 96, 160),
                "",
                t0,
            ));
            let t0 = Instant::now();
            let rows = ablation::adaptive_ablation(&ctx.bicg, &ctx.harness, 160 * KIB);
            out.push(Artifact::from_table(
                "ablation_adaptive",
                &ablation::adaptive_table(&rows, 160),
                "",
                t0,
            ));
            let t0 = Instant::now();
            let rows =
                ablation::bias_ablation(&ctx.bicg, &ctx.harness, 160 * KIB, &[1, 2, 3, 5, 9]);
            out.push(Artifact::from_table(
                "ablation_bias",
                &ablation::bias_table(&rows, 160),
                "",
                t0,
            ));
            out
        },
    ),
];

/// The co-runner sweep over 0–6 co-runners per profile on the context's
/// bicg instance (reduced problem size under `quick`).
fn interference_sweep_rows(ctx: &Ctx) -> Vec<interference::SweepRow> {
    interference::interference_sweep(&ctx.bicg, 160 * KIB, 8, 11, 6)
}

/// Subcommands dispatched outside [`JOBS`] (explicit-only; they never
/// run as part of the default full set).
const EXPLICIT_JOBS: &[(&str, &str)] = &[
    (
        "matrix",
        "matrix.{txt,csv} — scenario matrix (explicit only)",
    ),
    (
        "trace",
        "trace_{reuse,heatmap,policy_replay}.{txt,csv} + trace_capture.bin — \
         LLC capture, analyses, replay sweep (explicit only)",
    ),
    (
        "obs",
        "obs.{txt,csv} — phase-timing breakdown of a metered what-if plan \
         (explicit only; implies metrics recording)",
    ),
];

/// Renders the artifact listing for `--list` and error messages.
fn listing() -> String {
    let mut out = String::from(
        "figures [quick] [subcommand...] — artifacts under results/\n\
         modifiers: quick (reduced sizes), all (the default figure set, \
         explicitly), --list (this listing)\n\
         cache: on by default at results/.runcache (see CACHING.md); \
         `cache {stats,verify,gc}` introspects it\n\
         replay: policy/seed siblings derive from one captured live run \
         per derivation family (bit-identical outputs)\n\
         executor flags (shared with bench_matrix and serve):\n",
    );
    out.push_str(EXEC_FLAGS_HELP);
    out.push('\n');
    for (name, what) in JOBS
        .iter()
        .map(|(name, what, _)| (name, what))
        .chain(EXPLICIT_JOBS.iter().map(|(name, what)| (name, what)))
    {
        out.push_str(&format!("  {name:<13} {what}\n"));
    }
    out
}

/// Every canonical key the current artifact set can request — the live
/// set `cache gc` keeps: both full and quick variants of the plan-based
/// figures (3/4/5/6/7) and the scenario matrix, plus fig6's
/// data-dependent best-T follow-up whenever the store already holds the
/// complete first wave it derives from (computed through a store-backed
/// executor, i.e. from cache, never by executing anything).
fn live_keys(cache_dir: &Path) -> std::io::Result<HashSet<String>> {
    let mut keys = HashSet::new();
    for quick in [false, true] {
        let harness = if quick {
            Harness::quick()
        } else {
            Harness::default()
        };
        let bicg = if quick {
            Bicg::new(512, 512)
        } else {
            case_study_bicg()
        };
        let suite = if quick {
            suite_small()
        } else {
            standard_suite()
        };
        let mut reqs: Vec<RunRequest<'_>> = Vec::new();
        reqs.extend(fig3_requests(&bicg, &harness));
        reqs.extend(fig4_requests(&bicg, &harness));
        reqs.extend(fig5_requests(&bicg, &harness));
        reqs.extend(fig6_requests(&suite, &harness, 160, 8));
        reqs.extend(fig7_requests(&suite, &harness, 8));
        reqs.extend(whatif_requests(&bicg));
        let fig6_first: Vec<String> = fig6_requests(&suite, &harness, 160, 8)
            .iter()
            .map(RunRequest::key)
            .collect();
        keys.extend(reqs.iter().map(RunRequest::key));
        let store = RunStore::open(cache_dir)?;
        let mut first_wave_cached = true;
        for key in &fig6_first {
            if !store.contains(key)? {
                first_wave_cached = false;
                break;
            }
        }
        if first_wave_cached && !fig6_first.is_empty() {
            let executor = PlanExecutor::new().with_store(store);
            let tail = fig6_followup_requests(&suite, &harness, &executor);
            keys.extend(tail.iter().map(RunRequest::key));
        }
        let spec = if quick {
            MatrixSpec::quick(suite_small())
        } else {
            MatrixSpec::new(standard_suite())
        };
        for cell in spec.expand() {
            keys.extend(cell_requests(&spec, &cell).iter().map(RunRequest::key));
        }
    }
    Ok(keys)
}

/// Dispatches `figures -- cache <action>`; returns the process exit code.
fn cache_command(action: Option<&str>, cache_dir: &Path) -> i32 {
    let fail = |e: std::io::Error| -> i32 {
        eprintln!("figures: cache command failed: {e}");
        1
    };
    match action {
        // `stats` reports through the metrics registry: per-shard record
        // and byte gauges plus the segment-load latency histogram, in
        // the registry's stable text rendering.
        Some("stats") => {
            let registry = Registry::new();
            match RunStore::open(cache_dir).and_then(|s| s.stats_metered(&registry)) {
                Ok(stats) => {
                    println!("run cache at {}", cache_dir.display());
                    println!(
                        "{} records, {} segment file(s)",
                        stats.records, stats.segments
                    );
                    print!("{}", registry.snapshot().to_text());
                    0
                }
                Err(e) => fail(e),
            }
        }
        Some("verify") => match RunStore::open(cache_dir).and_then(|s| s.verify()) {
            Ok(stats) => {
                print!(
                    "verify ok: every record decoded and checksummed at {}\n{stats}",
                    cache_dir.display()
                );
                0
            }
            Err(e) => fail(e),
        },
        Some("gc") => {
            let keep = match live_keys(cache_dir) {
                Ok(keys) => keys,
                Err(e) => return fail(e),
            };
            match RunStore::open(cache_dir).and_then(|s| s.gc(|key| keep.contains(key))) {
                Ok(report) => {
                    println!("{report} at {}", cache_dir.display());
                    0
                }
                Err(e) => fail(e),
            }
        }
        _ => {
            eprintln!("figures: usage: cache {{stats,verify,gc}} [--cache-dir <path>]");
            2
        }
    }
}

fn main() {
    // Executor flags (shared parser; everything else passes through).
    let (flags, args) = ExecFlags::parse("results/.runcache", std::env::args().skip(1))
        .unwrap_or_else(|e| {
            eprintln!("figures: {e}\n\n{}", listing());
            std::process::exit(2);
        });
    let cache_dir = flags.cache_dir.clone();
    if args.iter().any(|a| a == "--list") {
        print!("{}", listing());
        return;
    }
    if args.first().map(String::as_str) == Some("cache") {
        std::process::exit(cache_command(args.get(1).map(String::as_str), &cache_dir));
    }
    let quick = args.iter().any(|a| a == "quick");
    let which: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| *a != "quick" && *a != "all")
        .collect();
    let known = |a: &str| {
        JOBS.iter().any(|(name, _, _)| *name == a)
            || EXPLICIT_JOBS.iter().any(|(name, _)| *name == a)
    };
    if let Some(bad) = which.iter().find(|a| !known(a)) {
        eprintln!("figures: unknown subcommand '{bad}'\n\n{}", listing());
        std::process::exit(2);
    }
    // `all` is the default figure set, spelled out (so `figures -- all
    // quick` is the canonical CI smoke invocation).
    let all = which.is_empty() || args.iter().any(|a| a == "all");
    let explicit_only = |name: &str| EXPLICIT_JOBS.iter().any(|(n, _)| *n == name);
    let run = |name: &str| (all && !explicit_only(name)) || which.contains(&name);
    let workers = default_workers();

    // One registry for the whole invocation when metrics are on. The
    // `obs` artifact needs timings even without `--metrics`, so it
    // implies a (process-local) registry; only `--metrics` persists the
    // snapshot.
    let registry: Option<Registry> = flags.registry().or_else(|| run("obs").then(Registry::new));

    // Parent directories (results/ included) are created per write by
    // `write_artifact`, so a nested or freshly wiped output tree works.
    let outdir = Path::new("results");

    // The store directory (and any missing parents) is created by
    // `RunStore::open`; corruption or I/O failure opening it is fatal
    // by the cache's hard-error policy.
    let executor = flags.executor().unwrap_or_else(|e| {
        eprintln!(
            "figures: cannot open run cache at {}: {e}",
            cache_dir.display()
        );
        std::process::exit(1);
    });

    let ctx = Ctx {
        quick,
        harness: if quick {
            Harness::quick()
        } else {
            Harness::default()
        },
        bicg: if quick {
            Bicg::new(512, 512)
        } else {
            case_study_bicg()
        },
        suite: if quick {
            suite_small()
        } else {
            standard_suite()
        },
        executor,
    };

    let emit = |artifact: &Artifact| {
        println!("{}", artifact.text);
        write_artifact(
            outdir.join(format!("{}.txt", artifact.name)),
            artifact.text.as_bytes(),
        );
        if let Some(csv) = &artifact.csv {
            write_artifact(
                outdir.join(format!("{}.csv", artifact.name)),
                csv.as_bytes(),
            );
        }
        eprintln!("{}", artifact.log);
    };

    let t0 = Instant::now();

    // Phase 1 — the merged figure plan: every requested plan-based figure
    // contributes its canonical requests, the executor elides duplicates
    // (both within and across figures) and executes the unique frontier at
    // run granularity. fig6's best-T interference tail is data-dependent,
    // so it is planned as a second wave once the first is cached.
    let mut merged: Vec<RunRequest<'_>> = Vec::new();
    if run("fig3") {
        merged.extend(fig3_requests(&ctx.bicg, &ctx.harness));
    }
    if run("fig4") {
        merged.extend(fig4_requests(&ctx.bicg, &ctx.harness));
    }
    if run("fig5") {
        merged.extend(fig5_requests(&ctx.bicg, &ctx.harness));
    }
    if run("fig6") {
        merged.extend(fig6_requests(&ctx.suite, &ctx.harness, 160, 8));
    }
    if run("fig7") {
        merged.extend(fig7_requests(&ctx.suite, &ctx.harness, 8));
    }
    if run("whatif") || run("obs") {
        // `obs` rides the what-if plan: small, yet it exercises the live,
        // replay, family, and (when cached) disk-hit paths the breakdown
        // reports.
        merged.extend(whatif_requests(&ctx.bicg));
    }
    // Metered twin when a registry exists, identical null-sink path
    // otherwise — outputs are byte-identical either way.
    let execute = |requests: &[RunRequest<'_>]| match registry.as_ref() {
        Some(reg) => ctx.executor.execute_metered(requests, workers, reg),
        None => ctx
            .executor
            .execute_metered(requests, workers, &NullMetrics),
    };
    if !merged.is_empty() {
        let tp = Instant::now();
        let summary = execute(&merged);
        eprintln!("[{summary} (merged figure plan, {:?})]", tp.elapsed());
        if run("fig6") {
            let tail = fig6_followup_requests(&ctx.suite, &ctx.harness, &ctx.executor);
            let summary = execute(&tail);
            eprintln!("[{summary} (fig6 best-T follow-up)]");
        }
    }

    // Phase 2 — job-granular artifacts: plan-based figures render from the
    // warm cache; the remaining generators compute as before.
    let jobs: Vec<&Job> = JOBS.iter().filter(|(name, _, _)| run(name)).collect();
    for artifacts in parallel_map(workers, &jobs, |(_, _, job)| {
        let _render = registry
            .as_ref()
            .map(|r| Span::start(r, "figures.render_ns"));
        job(&ctx)
    }) {
        for artifact in &artifacts {
            emit(artifact);
        }
    }

    if run("matrix") {
        let tm = Instant::now();
        let spec = if quick {
            MatrixSpec::quick(ctx.suite)
        } else {
            MatrixSpec::new(ctx.suite)
        };
        let result = match registry.as_ref() {
            Some(reg) => run_matrix_metered(&spec, workers, &ctx.executor, reg),
            None => run_matrix_metered(&spec, workers, &ctx.executor, &NullMetrics),
        };
        emit(&Artifact {
            name: "matrix".into(),
            text: result.render(),
            csv: Some(result.to_csv()),
            log: format!(
                "[matrix done in {:?}: {} cells on {workers} worker(s)]",
                tm.elapsed(),
                result.cells().len()
            ),
        });
    }

    if run("trace") {
        let tt = Instant::now();
        let art = prem_trace::trace_artifacts(&ctx.bicg, 160 * KIB, 8, 11, workers);
        write_artifact(outdir.join("trace_capture.bin"), &art.encoded);
        // One capture+sweep produces all three tables, so there is no
        // meaningful per-artifact cost to report — the log lines say so
        // and the summary below carries the job total.
        let emit_table = |name: &str, table: &Table, extra: &str| {
            emit(&Artifact {
                name: name.to_string(),
                text: format!("{table}\n{extra}"),
                csv: Some(table.to_csv()),
                log: format!("[{name} written (one shared trace job, total below)]"),
            });
        };
        emit_table("trace_reuse", &art.reuse, "");
        emit_table("trace_heatmap", &art.heatmap, &art.heatmap_extra);
        emit_table("trace_policy_replay", &art.policy_replay, &art.policy_extra);
        eprintln!(
            "[trace done in {:?}: {} events, {} bytes -> results/trace_capture.bin]",
            tt.elapsed(),
            art.trace.events.len(),
            art.encoded.len()
        );
    }
    // The obs artifact renders last so it sees every phase recorded
    // above (merged plan, renders, matrix); the snapshot is read-only,
    // so the breakdown can never perturb the artifacts it reports on.
    if run("obs") {
        let t0 = Instant::now();
        let snap = registry
            .as_ref()
            .expect("obs implies a registry")
            .snapshot();
        let table = obs_table(&snap);
        let extra = obs_counters(&snap);
        emit(&Artifact::from_table("obs", &table, &extra, t0));
    }

    if flags.metrics_enabled() {
        let registry = registry.as_ref().expect("--metrics implies a registry");
        match flags.write_metrics(registry) {
            Ok(path) => eprintln!("[metrics snapshot -> {}]", path.display()),
            Err(e) => {
                eprintln!("figures: cannot write metrics snapshot: {e}");
                std::process::exit(1);
            }
        }
    }

    eprintln!(
        "[all artifacts done in {:?} on {workers} worker(s); cumulative {}]",
        t0.elapsed(),
        ctx.executor.summary()
    );
}
