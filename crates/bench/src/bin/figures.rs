//! Regenerates every table and figure of the paper into `results/`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p prem-bench --bin figures            # everything
//! cargo run --release -p prem-bench --bin figures -- fig4    # one artifact
//! cargo run --release -p prem-bench --bin figures -- quick   # reduced sizes
//! ```

use std::fs;
use std::path::Path;
use std::time::Instant;

use prem_kernels::{case_study_bicg, standard_suite, suite_small, Bicg};
use prem_memsim::KIB;
use prem_report::{
    ablation, common::Harness, fig2::fig2, fig3::fig3, fig3::fig5, fig4::fig4, fig6::fig6,
    fig7::fig7, mei::mei, Table,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let which: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| *a != "quick")
        .collect();
    let all = which.is_empty();
    let run = |name: &str| all || which.contains(&name);

    let outdir = Path::new("results");
    fs::create_dir_all(outdir).expect("create results/");

    let harness = if quick {
        Harness::quick()
    } else {
        Harness::default()
    };
    let bicg: Bicg = if quick {
        Bicg::new(512, 512)
    } else {
        case_study_bicg()
    };
    let suite = if quick {
        suite_small()
    } else {
        standard_suite()
    };

    let emit = |name: &str, table: &Table, extra: &str| {
        let text = format!("{table}\n{extra}");
        println!("{text}");
        fs::write(outdir.join(format!("{name}.txt")), &text).expect("write txt");
        fs::write(outdir.join(format!("{name}.csv")), table.to_csv()).expect("write csv");
    };

    if run("fig1") {
        use prem_core::{run_prem, NoiseModel, PremConfig, SyncConfig};
        use prem_gpusim::{PlatformConfig, Scenario};
        use prem_kernels::Kernel;
        let intervals = bicg.intervals(160 * KIB).expect("tiling");
        let mut platform = PlatformConfig::tx1().build();
        let cfg = PremConfig::llc_tamed().with_noise(NoiseModel::tx1());
        let run = run_prem(&mut platform, &intervals, &cfg, Scenario::Isolation).expect("prem run");
        let text =
            prem_report::fig1::timeline(&run, &SyncConfig::tx1(), platform.clock_ghz, 4, 0.4);
        println!("{text}");
        fs::write(outdir.join("fig1.txt"), &text).expect("write fig1");
        eprintln!("[fig1 done]");
    }
    if run("fig2") {
        let t0 = Instant::now();
        let f = fig2(&bicg, 160 * KIB);
        emit("fig2", &f.table(), "");
        eprintln!("[fig2 done in {:?}]", t0.elapsed());
    }
    if run("fig3") {
        let t0 = Instant::now();
        let f = fig3(&bicg, &harness);
        emit("fig3", &f.table(), &f.chart());
        eprintln!("[fig3 done in {:?}]", t0.elapsed());
    }
    if run("fig4") {
        let t0 = Instant::now();
        let f = fig4(&bicg, &harness);
        emit("fig4", &f.table(), "");
        eprintln!("[fig4 done in {:?}]", t0.elapsed());
    }
    if run("fig5") {
        let t0 = Instant::now();
        let f = fig5(&bicg, &harness);
        emit("fig5", &f.table(), &f.chart());
        eprintln!("[fig5 done in {:?}]", t0.elapsed());
    }
    if run("fig6") {
        let t0 = Instant::now();
        let f = fig6(&suite, &harness, 160, 8);
        emit("fig6", &f.table(), "");
        eprintln!("[fig6 done in {:?}]", t0.elapsed());
    }
    if run("fig7") {
        let t0 = Instant::now();
        let f = fig7(&suite, &harness, 8);
        emit("fig7", &f.table(), "");
        eprintln!("[fig7 done in {:?}]", t0.elapsed());
    }
    if run("mei") {
        let t0 = Instant::now();
        let (_, table) = mei(if quick { 5_000 } else { 50_000 }, 7);
        emit("mei", &table, "");
        eprintln!("[mei done in {:?}]", t0.elapsed());
    }
    if run("ablation") {
        let t0 = Instant::now();
        let rows = ablation::policy_ablation(&bicg, &harness, 160 * KIB, &[1, 8]);
        emit("ablation_policy", &ablation::policy_table(&rows, 160), "");
        let rows = ablation::msg_ablation(
            &bicg,
            &harness,
            96 * KIB,
            160 * KIB,
            &[5.0, 10.0, 20.0, 50.0, 100.0],
        );
        emit("ablation_msg", &ablation::msg_table(&rows, 96, 160), "");
        let rows = ablation::adaptive_ablation(&bicg, &harness, 160 * KIB);
        emit(
            "ablation_adaptive",
            &ablation::adaptive_table(&rows, 160),
            "",
        );
        let rows = ablation::bias_ablation(&bicg, &harness, 160 * KIB, &[1, 2, 3, 5, 9]);
        emit("ablation_bias", &ablation::bias_table(&rows, 160), "");
        eprintln!("[ablation done in {:?}]", t0.elapsed());
    }
}
