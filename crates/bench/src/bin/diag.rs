//! Diagnostic scratchpad: per-kernel PREM run internals at one configuration.
//!
//! Kernels are independent, so the sweep fans out on the scenario-matrix
//! engine's thread pool and prints in suite order.

use prem_gpusim::Scenario;
use prem_harness::{default_workers, parallel_map};
use prem_kernels::{standard_suite, Kernel};
use prem_memsim::KIB;
use prem_report::{run_base, run_llc, run_spm};

fn main() {
    let t = 160 * KIB;
    let suite = standard_suite();
    let lines = parallel_map(default_workers(), &suite, |k| {
        let k: &dyn Kernel = k.as_ref();
        let iso = run_llc(k, t, 8, 11, Scenario::Isolation);
        let intf = run_llc(k, t, 8, 11, Scenario::Interference);
        let spm = run_spm(k, 96 * KIB, 11, Scenario::Isolation);
        let base = run_base(k, 11, Scenario::Isolation);
        format!(
            "{:<8} ivs={:<4} m/iv={:>6.1}us c/iv={:>6.1}us idle/iv={:>6.1}us cpmr={:>5.2}% \
             intf/iso={:.3} viol={:>8.0} | spm: ivs={:<4} m/iv={:>6.1}us c/iv={:>6.1}us | base={:.2e}",
            k.name(),
            iso.intervals,
            iso.breakdown.m_work / iso.intervals as f64 / 1000.0,
            iso.breakdown.c_work / iso.intervals as f64 / 1000.0,
            iso.breakdown.idle / iso.intervals as f64 / 1000.0,
            iso.cpmr * 100.0,
            intf.makespan_cycles / iso.makespan_cycles,
            intf.budget_violation_cycles,
            spm.intervals,
            spm.breakdown.m_work / spm.intervals as f64 / 1000.0,
            spm.breakdown.c_work / spm.intervals as f64 / 1000.0,
            base.cycles,
        )
    });
    for line in lines {
        println!("{line}");
    }
}
