//! # prem-bench — artifact binaries and criterion benches
//!
//! This crate has no library API of its own; it exists to host
//!
//! * `bin/figures` — regenerates every paper artifact (and the scenario
//!   matrix) into `results/`, fanning independent artifacts out on the
//!   `prem-harness` thread pool;
//! * `bin/diag` — a per-kernel diagnostic sweep of PREM run internals;
//! * `benches/figures`, `benches/simulator` — criterion benches over the
//!   figure generators and the simulator hot paths.
//!
//! See EXPERIMENTS.md at the repository root for the artifact map.

#![deny(missing_docs)]
