//! Placeholder; implemented in subsequent commits.
